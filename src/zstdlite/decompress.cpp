#include "zstdlite/decompress.h"

#include <algorithm>
#include <cstring>

#include "common/mem.h"
#include "common/varint.h"
#include "zstdlite/literals.h"
#include "zstdlite/sequences.h"

namespace cdpu::zstdlite
{

Result<FrameHeader>
peekFrameHeader(ByteSpan data)
{
    std::size_t pos = 0;
    return readFrameHeader(data, pos);
}

namespace
{

/**
 * Replays one compressed block's literals + sequences into @p out.
 *
 * The block's regenerated size is known from its header, so the buffer
 * is pre-sized once (with the wild-copy slop margin, trimmed before
 * returning) and filled by cursor: literal runs memcpy in, match
 * replays use word-chunked copies for offsets >= 8 and the
 * overlap-safe incremental copy below that.
 */
Status
executeBlock(const DecodedLiterals &literals,
             const std::vector<lz77::Sequence> &sequences,
             std::size_t regen_size, u64 window_size, Bytes &out)
{
    // Everything the block can produce is already decoded, so the
    // claimed size is verifiable before the buffer grows — a corrupt
    // header cannot force a large allocation.
    u64 produced = literals.bytes.size();
    for (const auto &seq : sequences)
        produced += seq.matchLength;
    if (produced != regen_size)
        return Status::corrupt("block regenerated size mismatch");

    const std::size_t base = out.size();
    const std::size_t end = base + regen_size;
    out.resize(end + mem::kWildCopySlop);
    u8 *dst = out.data();
    std::size_t op = base;
    std::size_t lit_cursor = 0;
    for (const auto &seq : sequences) {
        if (lit_cursor + seq.literalLength > literals.bytes.size())
            return Status::corrupt("sequence literal budget exceeded");
        if (op + seq.literalLength > end)
            return Status::corrupt("block regenerated size mismatch");
        if (seq.literalLength != 0) {
            std::memcpy(dst + op, literals.bytes.data() + lit_cursor,
                        seq.literalLength);
            op += seq.literalLength;
            lit_cursor += seq.literalLength;
        }

        if (seq.offset == 0 || seq.offset > op)
            return Status::corrupt("match offset exceeds history");
        if (seq.offset > window_size)
            return Status::corrupt("match offset exceeds window");
        if (op + seq.matchLength > end)
            return Status::corrupt("block regenerated size mismatch");
        if (seq.offset >= 8)
            mem::wildCopy(dst + op, dst + op - seq.offset,
                          seq.matchLength);
        else
            mem::incrementalCopy(dst + op, seq.offset,
                                 seq.matchLength); // Overlap is legal.
        op += seq.matchLength;
    }
    // Remaining literals are the block's tail.
    const std::size_t tail = literals.bytes.size() - lit_cursor;
    if (op + tail != end)
        return Status::corrupt("block regenerated size mismatch");
    if (tail != 0)
        std::memcpy(dst + op, literals.bytes.data() + lit_cursor, tail);
    out.resize(end);
    return Status::okStatus();
}

} // namespace

Status
decompressInto(ByteSpan data, Bytes &out, FileTrace *trace)
{
    out.clear();
    std::size_t pos = 0;
    auto header = readFrameHeader(data, pos);
    if (!header.ok())
        return header.status();
    const u64 window_size = 1ull << header.value().windowLog;
    if (header.value().contentSize > (1ull << 32))
        return Status::corrupt("content size beyond 4 GiB bound");

    if (trace) {
        *trace = FileTrace{};
        trace->contentSize = header.value().contentSize;
        trace->compressedSize = data.size();
    }

    // Reserve conservatively: the claimed size is untrusted until the
    // stream fully decodes, so cap the up-front allocation.
    out.reserve(std::min<u64>(header.value().contentSize, 64 * kMiB));

    bool saw_last = false;
    while (!saw_last) {
        if (pos >= data.size())
            return Status::corrupt("missing last block");
        u8 block_header = data[pos++];
        saw_last = block_header & 1;
        u8 type_bits = (block_header >> 1) & 3;
        if (type_bits > static_cast<u8>(BlockType::compressed))
            return Status::corrupt("bad block type");
        auto type = static_cast<BlockType>(type_bits);

        auto regen = getVarint(data, pos);
        if (!regen.ok())
            return regen.status();
        if (out.size() + regen.value() > header.value().contentSize)
            return Status::corrupt("blocks exceed content size");
        std::size_t regen_size = regen.value();

        BlockTrace block_trace;
        block_trace.type = type;
        block_trace.regenSize = regen_size;

        switch (type) {
          case BlockType::raw: {
            if (pos + regen_size > data.size())
                return Status::corrupt("raw block truncated");
            out.insert(out.end(), data.begin() + pos,
                       data.begin() + pos + regen_size);
            pos += regen_size;
            break;
          }
          case BlockType::rle: {
            if (pos >= data.size())
                return Status::corrupt("rle block truncated");
            out.insert(out.end(), regen_size, data[pos++]);
            break;
          }
          case BlockType::compressed: {
            auto comp_size = getVarint(data, pos);
            if (!comp_size.ok())
                return comp_size.status();
            if (pos + comp_size.value() > data.size())
                return Status::corrupt("compressed block truncated");
            ByteSpan body = data.subspan(pos, comp_size.value());
            pos += comp_size.value();

            std::size_t body_pos = 0;
            auto literals = decodeLiteralsSection(body, body_pos);
            if (!literals.ok())
                return literals.status();
            auto sequences = decodeSequencesSection(body, body_pos);
            if (!sequences.ok())
                return sequences.status();
            if (body_pos != body.size())
                return Status::corrupt("trailing bytes in block body");

            CDPU_RETURN_IF_ERROR(executeBlock(
                literals.value(), sequences.value().sequences,
                regen_size, window_size, out));

            block_trace.literalsMode = literals.value().mode;
            block_trace.litCount = literals.value().bytes.size();
            block_trace.litStreamBytes = literals.value().streamBytes;
            block_trace.numSequences =
                sequences.value().sequences.size();
            block_trace.seqStreamBytes = sequences.value().streamBytes;
            block_trace.dynamicTables = sequences.value().dynamicTables;
            block_trace.sequences =
                std::move(sequences.value().sequences);
            break;
          }
        }
        if (trace)
            trace->blocks.push_back(std::move(block_trace));
    }

    if (out.size() != header.value().contentSize)
        return Status::corrupt("content size mismatch");
    if (pos != data.size())
        return Status::corrupt("trailing bytes after last block");
    return Status::okStatus();
}

Result<Bytes>
decompress(ByteSpan data, FileTrace *trace)
{
    Bytes out;
    CDPU_RETURN_IF_ERROR(decompressInto(data, out, trace));
    return out;
}

} // namespace cdpu::zstdlite
