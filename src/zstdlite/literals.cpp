#include "zstdlite/literals.h"

#include <algorithm>

#include "common/varint.h"
#include "huffman/decoder.h"
#include "huffman/encoder.h"

namespace cdpu::zstdlite
{

namespace
{

/** Packed 4-bit-per-symbol code length table: 256 symbols, 128 bytes. */
constexpr std::size_t kLengthTableBytes = 128;

void
packLengths(const std::vector<u8> &lengths, Bytes &out)
{
    for (std::size_t i = 0; i < 256; i += 2) {
        u8 lo = i < lengths.size() ? lengths[i] : 0;
        u8 hi = i + 1 < lengths.size() ? lengths[i + 1] : 0;
        out.push_back(static_cast<u8>(lo | (hi << 4)));
    }
}

std::vector<u8>
unpackLengths(ByteSpan packed)
{
    std::vector<u8> lengths(256);
    for (std::size_t i = 0; i < 256; i += 2) {
        u8 byte = packed[i / 2];
        lengths[i] = byte & 0x0f;
        lengths[i + 1] = byte >> 4;
    }
    return lengths;
}

} // namespace

void
encodeLiteralsSection(ByteSpan literals, Bytes &out,
                      LiteralsMode *mode_out,
                      std::size_t *stream_bytes_out)
{
    auto emit_header = [&](LiteralsMode mode) {
        out.push_back(static_cast<u8>(mode));
        putVarint(out, literals.size());
        if (mode_out)
            *mode_out = mode;
        if (stream_bytes_out)
            *stream_bytes_out = 0;
    };

    if (literals.empty()) {
        emit_header(LiteralsMode::raw);
        return;
    }

    // RLE: a uniform run of more than a few bytes.
    bool uniform = std::all_of(literals.begin(), literals.end(),
                               [&](u8 b) { return b == literals[0]; });
    if (uniform && literals.size() > 4) {
        emit_header(LiteralsMode::rle);
        out.push_back(literals[0]);
        return;
    }

    // Try Huffman; fall back to raw when it cannot win (including its
    // fixed 128-byte table and varint stream length).
    auto freqs = huffman::countFrequencies(literals);
    auto table = huffman::buildCodeTable(freqs);
    if (table.ok()) {
        auto bit_cost = huffman::encodedBitCost(table.value(), literals);
        if (bit_cost.ok()) {
            std::size_t stream_bytes = (bit_cost.value() + 1 + 7) / 8;
            std::size_t huff_total = kLengthTableBytes + stream_bytes +
                                     varintSize(stream_bytes);
            if (huff_total < literals.size()) {
                emit_header(LiteralsMode::huffman);
                packLengths(table.value().lengths, out);
                putVarint(out, stream_bytes);
                BitWriter writer;
                // Cannot fail: the table was built over these literals.
                (void)huffman::encode(table.value(), literals, writer);
                Bytes stream = writer.finish();
                out.insert(out.end(), stream.begin(), stream.end());
                if (stream_bytes_out)
                    *stream_bytes_out = stream.size();
                return;
            }
        }
    }

    emit_header(LiteralsMode::raw);
    out.insert(out.end(), literals.begin(), literals.end());
}

Result<DecodedLiterals>
decodeLiteralsSection(ByteSpan data, std::size_t &pos,
                      std::size_t max_literals)
{
    if (pos >= data.size())
        return Status::corrupt("literals section truncated");
    u8 mode_byte = data[pos++];
    if (mode_byte > static_cast<u8>(LiteralsMode::huffman))
        return Status::corrupt("bad literals mode");
    DecodedLiterals result;
    result.mode = static_cast<LiteralsMode>(mode_byte);

    auto count = getVarint(data, pos);
    if (!count.ok())
        return count.status();
    // Checked before any mode allocates: RLE assigns and Huffman
    // reserves lit_count bytes, so the claim must fit the block bound
    // first.
    if (count.value() > max_literals)
        return Status::corrupt("literal count exceeds block bound");
    std::size_t lit_count = count.value();

    switch (result.mode) {
      case LiteralsMode::raw: {
        if (pos + lit_count > data.size())
            return Status::corrupt("raw literals truncated");
        result.bytes.assign(data.begin() + pos,
                            data.begin() + pos + lit_count);
        pos += lit_count;
        return result;
      }
      case LiteralsMode::rle: {
        if (pos >= data.size())
            return Status::corrupt("rle literal truncated");
        result.bytes.assign(lit_count, data[pos++]);
        return result;
      }
      case LiteralsMode::huffman: {
        if (pos + kLengthTableBytes > data.size())
            return Status::corrupt("huffman table truncated");
        auto lengths =
            unpackLengths(data.subspan(pos, kLengthTableBytes));
        pos += kLengthTableBytes;
        auto table = huffman::codesFromLengths(lengths);
        if (!table.ok())
            return table.status();
        auto decoder = huffman::Decoder::build(table.value());
        if (!decoder.ok())
            return decoder.status();

        auto stream_bytes = getVarint(data, pos);
        if (!stream_bytes.ok())
            return stream_bytes.status();
        if (pos + stream_bytes.value() > data.size())
            return Status::corrupt("huffman stream truncated");
        ByteSpan stream = data.subspan(pos, stream_bytes.value());
        pos += stream_bytes.value();
        result.streamBytes = stream.size();

        BitReader reader(stream);
        result.bytes.reserve(lit_count);
        CDPU_RETURN_IF_ERROR(
            decoder.value().decode(reader, lit_count, result.bytes));
        return result;
      }
    }
    return Status::internal("unreachable literals mode");
}

} // namespace cdpu::zstdlite
