#include "zstdlite/format.h"

#include "common/histogram.h"
#include "common/varint.h"

namespace cdpu::zstdlite
{

namespace
{

/** zstd literal-length codes 16..35: baselines and extra bits. */
struct BinSpec
{
    u32 baseline;
    u8 extraBits;
};

constexpr std::array<BinSpec, 20> kLLBins = {{
    {16, 1}, {18, 1}, {20, 1}, {22, 1}, {24, 2}, {28, 2}, {32, 3},
    {40, 3}, {48, 4}, {64, 6}, {128, 7}, {256, 8}, {512, 9}, {1024, 10},
    {2048, 11}, {4096, 12}, {8192, 13}, {16384, 14}, {32768, 15},
    {65536, 16},
}};

/** zstd match-length codes 32..52: baselines and extra bits. */
constexpr std::array<BinSpec, 21> kMLBins = {{
    {35, 1}, {37, 1}, {39, 1}, {41, 1}, {43, 2}, {47, 2}, {51, 3},
    {59, 3}, {67, 4}, {83, 4}, {99, 5}, {131, 7}, {259, 8}, {515, 9},
    {1027, 10}, {2051, 11}, {4099, 12}, {8195, 13}, {16387, 14},
    {32771, 15}, {65539, 16},
}};

} // namespace

CodeBin
literalLengthBin(u32 value)
{
    if (value < 16)
        return {static_cast<u8>(value), 0, value};
    for (std::size_t i = kLLBins.size(); i-- > 0;) {
        if (value >= kLLBins[i].baseline) {
            return {static_cast<u8>(16 + i), kLLBins[i].extraBits,
                    kLLBins[i].baseline};
        }
    }
    return {16, kLLBins[0].extraBits, kLLBins[0].baseline};
}

CodeBin
matchLengthBin(u32 value)
{
    // value >= 3; codes 0..31 cover 3..34 directly.
    if (value < 35)
        return {static_cast<u8>(value - kMinMatchLength), 0, value};
    for (std::size_t i = kMLBins.size(); i-- > 0;) {
        if (value >= kMLBins[i].baseline) {
            return {static_cast<u8>(32 + i), kMLBins[i].extraBits,
                    kMLBins[i].baseline};
        }
    }
    return {32, kMLBins[0].extraBits, kMLBins[0].baseline};
}

CodeBin
offsetBin(u32 value)
{
    // value >= 1: code is the bit width minus one; extra bits carry the
    // remainder below the leading power of two.
    u8 code = static_cast<u8>(floorLog2(value));
    return {code, code, 1u << code};
}

Result<CodeBin>
literalLengthFromCode(u8 code)
{
    if (code < 16)
        return CodeBin{code, 0, code};
    if (code >= kNumLLCodes)
        return Status::corrupt("literal length code out of range");
    const BinSpec &spec = kLLBins[code - 16];
    return CodeBin{code, spec.extraBits, spec.baseline};
}

Result<CodeBin>
matchLengthFromCode(u8 code)
{
    if (code < 32)
        return CodeBin{code, 0, code + kMinMatchLength};
    if (code >= kNumMLCodes)
        return Status::corrupt("match length code out of range");
    const BinSpec &spec = kMLBins[code - 32];
    return CodeBin{code, spec.extraBits, spec.baseline};
}

Result<CodeBin>
offsetFromCode(u8 code)
{
    if (code >= kNumOFCodes)
        return Status::corrupt("offset code out of range");
    return CodeBin{code, code, 1u << code};
}

void
writeFrameHeader(const FrameHeader &header, Bytes &out)
{
    out.insert(out.end(), kMagic.begin(), kMagic.end());
    out.push_back(static_cast<u8>(header.windowLog));
    putVarint(out, header.contentSize);
}

Result<FrameHeader>
readFrameHeader(ByteSpan data, std::size_t &pos)
{
    if (data.size() < pos + kMagic.size() + 1)
        return Status::corrupt("frame header truncated");
    for (u8 expected : kMagic) {
        if (data[pos++] != expected)
            return Status::corrupt("bad magic");
    }
    FrameHeader header;
    header.windowLog = data[pos++];
    if (header.windowLog < kMinWindowLog ||
        header.windowLog > kMaxWindowLog) {
        return Status::corrupt("window log out of range");
    }
    auto size = getVarint(data, pos);
    if (!size.ok())
        return size.status();
    header.contentSize = size.value();
    return header;
}

} // namespace cdpu::zstdlite
