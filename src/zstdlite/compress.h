/**
 * @file
 * ZstdLite compressor: LZ77 parse, block partitioning, literals +
 * sequences encoding.
 */

#ifndef CDPU_ZSTDLITE_COMPRESS_H_
#define CDPU_ZSTDLITE_COMPRESS_H_

#include "lz77/match_finder.h"
#include "zstdlite/format.h"

namespace cdpu::zstdlite
{

/** Supported compression levels (negative levels are "fast" modes,
 *  mirroring zstd's level space from Section 3.3.2 of the paper). */
inline constexpr int kMinLevel = -7;
inline constexpr int kMaxLevel = 22;
inline constexpr int kDefaultLevel = 3;

/** Compressor tuning. */
struct CompressorConfig
{
    int level = kDefaultLevel;
    /** History window; bounds match offsets. Runtime-configurable in
     *  the paper's CDPU (parameter 4 of Section 5.8). */
    unsigned windowLog = 17;
    /**
     * When set, overrides the level-derived match-finder geometry —
     * the hook the CDPU compression model uses to impose hardware
     * hash-table parameters (entries/ways/hash function).
     */
    bool overrideMatchFinder = false;
    lz77::HashTableConfig matchFinderOverride{};
    bool skipAccelerationOverride = true;
};

/** Level-derived match-finder parameters (exposed for tests/model). */
lz77::MatchFinderConfig levelParameters(int level, unsigned window_log);

/**
 * Compresses @p input into a self-contained ZstdLite frame.
 * Optionally records a per-block trace for the CDPU cycle models.
 */
Result<Bytes> compress(ByteSpan input, const CompressorConfig &config = {},
                       FileTrace *trace = nullptr,
                       lz77::MatchFinderStats *stats = nullptr);

/**
 * Context-reuse variant of compress(): emits into @p out, clearing it
 * first but keeping its capacity, so a serving loop replaying many
 * calls through one scratch buffer stops allocating once the buffer
 * has grown to the workload's largest frame.
 */
Status compressInto(ByteSpan input, Bytes &out,
                    const CompressorConfig &config = {},
                    FileTrace *trace = nullptr,
                    lz77::MatchFinderStats *stats = nullptr);

} // namespace cdpu::zstdlite

#endif // CDPU_ZSTDLITE_COMPRESS_H_
