#include "zstdlite/compress.h"

#include <algorithm>

#include "common/varint.h"
#include "zstdlite/literals.h"
#include "zstdlite/sequences.h"

namespace cdpu::zstdlite
{

lz77::MatchFinderConfig
levelParameters(int level, unsigned window_log)
{
    lz77::MatchFinderConfig config;
    config.windowSize = std::size_t{1} << window_log;
    config.minMatchLength = kMinMatchLength + 1; // 4-byte hash probes
    config.maxMatchLength = kMaxMatchLength;
    config.hashTable.hashFunction = lz77::HashFunction::fibonacci64;

    struct Tier
    {
        int maxLevel;
        unsigned hashLog;
        unsigned ways;
        bool lazy;
        bool skip;
    };
    // Effort tiers loosely mirroring zstd's fast -> lazy progression.
    static constexpr Tier kTiers[] = {
        {0, 12, 1, false, true},   // negative "fast" levels
        {1, 13, 1, false, true},
        {2, 14, 1, false, true},
        {3, 15, 2, true, true},    // default; dfast-like
        {4, 16, 2, true, true},
        {6, 16, 2, true, true},
        {8, 17, 4, true, true},
        {12, 17, 8, true, false},
        {16, 18, 8, true, false},
        {22, 18, 16, true, false},
    };
    for (const Tier &tier : kTiers) {
        if (level <= tier.maxLevel) {
            config.hashTable.log2Entries = tier.hashLog;
            config.hashTable.ways = tier.ways;
            config.lazyMatching = tier.lazy;
            config.skipAcceleration = tier.skip;
            return config;
        }
    }
    return config;
}

namespace
{

/** One block's worth of parse output, ready for section encoding. */
struct PendingBlock
{
    std::vector<lz77::Sequence> sequences;
    Bytes literals;
    std::size_t regenSize = 0;
};

/** Encodes and appends one block; falls back to raw when compression
 *  does not win. */
Status
flushBlock(PendingBlock &block, ByteSpan block_input, bool last,
           Bytes &out, FileTrace *trace)
{
    BlockTrace block_trace;
    block_trace.regenSize = block.regenSize;

    // Try a compressed block into a scratch buffer.
    Bytes scratch;
    LiteralsMode lit_mode = LiteralsMode::raw;
    std::size_t lit_stream = 0;
    encodeLiteralsSection(block.literals, scratch, &lit_mode,
                          &lit_stream);
    std::size_t seq_stream = 0;
    bool dynamic = false;
    CDPU_RETURN_IF_ERROR(encodeSequencesSection(
        block.sequences, scratch, &seq_stream, &dynamic));

    const bool uniform =
        !block_input.empty() &&
        std::all_of(block_input.begin(), block_input.end(),
                    [&](u8 b) { return b == block_input[0]; });

    u8 header_last = last ? 1 : 0;
    if (uniform && block_input.size() > 8) {
        out.push_back(static_cast<u8>(
            header_last | (static_cast<u8>(BlockType::rle) << 1)));
        putVarint(out, block.regenSize);
        out.push_back(block_input[0]);
        block_trace.type = BlockType::rle;
    } else if (scratch.size() + varintSize(scratch.size()) <
               block_input.size()) {
        out.push_back(static_cast<u8>(
            header_last | (static_cast<u8>(BlockType::compressed) << 1)));
        putVarint(out, block.regenSize);
        putVarint(out, scratch.size());
        out.insert(out.end(), scratch.begin(), scratch.end());
        block_trace.type = BlockType::compressed;
        block_trace.literalsMode = lit_mode;
        block_trace.litCount = block.literals.size();
        block_trace.litStreamBytes = lit_stream;
        block_trace.numSequences = block.sequences.size();
        block_trace.seqStreamBytes = seq_stream;
        block_trace.dynamicTables = dynamic;
        block_trace.sequences = block.sequences;
    } else {
        out.push_back(static_cast<u8>(
            header_last | (static_cast<u8>(BlockType::raw) << 1)));
        putVarint(out, block.regenSize);
        out.insert(out.end(), block_input.begin(), block_input.end());
        block_trace.type = BlockType::raw;
    }

    if (trace)
        trace->blocks.push_back(std::move(block_trace));
    block = PendingBlock{};
    return Status::okStatus();
}

} // namespace

Status
compressInto(ByteSpan input, Bytes &out, const CompressorConfig &config,
             FileTrace *trace, lz77::MatchFinderStats *stats_out)
{
    if (config.level < kMinLevel || config.level > kMaxLevel)
        return Status::invalid("compression level out of range");
    if (config.windowLog < kMinWindowLog ||
        config.windowLog > kMaxWindowLog) {
        return Status::invalid("window log out of range");
    }

    out.clear();
    writeFrameHeader({config.windowLog, input.size()}, out);
    if (trace) {
        *trace = FileTrace{};
        trace->contentSize = input.size();
    }

    lz77::MatchFinderConfig mf_config =
        levelParameters(config.level, config.windowLog);
    if (config.overrideMatchFinder) {
        mf_config.hashTable = config.matchFinderOverride;
        mf_config.skipAcceleration = config.skipAccelerationOverride;
    }
    lz77::MatchFinder finder(mf_config);
    lz77::MatchFinderStats stats;
    lz77::Parse parse = finder.parse(input, &stats);
    if (stats_out)
        *stats_out = stats;

    // Partition the parse into blocks of ~kBlockTarget regenerated
    // bytes. Over-long literal runs are cut by flushing the pending
    // block with the run's head as its trailing literals.
    PendingBlock block;
    std::size_t cursor = 0;      // input position
    std::size_t block_start = 0; // first input byte of current block

    auto flush = [&](bool last) -> Status {
        ByteSpan block_input =
            input.subspan(block_start, cursor - block_start);
        CDPU_RETURN_IF_ERROR(
            flushBlock(block, block_input, last, out, trace));
        block_start = cursor;
        return Status::okStatus();
    };

    for (const auto &seq : parse.sequences) {
        u32 literal_len = seq.literalLength;
        while (literal_len > kMaxSeqLiteralRun) {
            // Move the head of the run into the current block as tail
            // literals and cut — in slabs of at most kBlockTarget, so
            // one giant run can never mint a block past the decoder's
            // kMaxBlockRegenSize bound.
            u32 head = literal_len - kMaxSeqLiteralRun;
            u32 take =
                std::min<u32>(head, static_cast<u32>(kBlockTarget));
            block.literals.insert(block.literals.end(),
                                  input.begin() + cursor,
                                  input.begin() + cursor + take);
            block.regenSize += take;
            cursor += take;
            literal_len -= take;
            CDPU_RETURN_IF_ERROR(flush(false));
        }
        block.literals.insert(block.literals.end(),
                              input.begin() + cursor,
                              input.begin() + cursor + literal_len);
        cursor += literal_len;
        lz77::Sequence adjusted = seq;
        adjusted.literalLength = literal_len;
        block.sequences.push_back(adjusted);
        block.regenSize += literal_len + seq.matchLength;
        cursor += seq.matchLength;
        if (block.regenSize >= kBlockTarget)
            CDPU_RETURN_IF_ERROR(flush(false));
    }

    // Trailing literals after the last sequence, in slabs that keep
    // every block under the decoder's kMaxBlockRegenSize bound.
    while (cursor < input.size()) {
        std::size_t room = block.regenSize < kBlockTarget
                               ? kBlockTarget - block.regenSize
                               : 0;
        if (room == 0) {
            CDPU_RETURN_IF_ERROR(flush(false));
            room = kBlockTarget;
        }
        std::size_t take = std::min(input.size() - cursor, room);
        block.literals.insert(block.literals.end(),
                              input.begin() + cursor,
                              input.begin() + cursor + take);
        block.regenSize += take;
        cursor += take;
    }
    CDPU_RETURN_IF_ERROR(flush(true));

    if (trace)
        trace->compressedSize = out.size();
    return Status::okStatus();
}

Result<Bytes>
compress(ByteSpan input, const CompressorConfig &config, FileTrace *trace,
         lz77::MatchFinderStats *stats_out)
{
    Bytes out;
    CDPU_RETURN_IF_ERROR(
        compressInto(input, out, config, trace, stats_out));
    return out;
}

} // namespace cdpu::zstdlite
