#include "zstdlite/sequences.h"

#include "common/varint.h"
#include "fse/decoder.h"
#include "fse/encoder.h"

namespace cdpu::zstdlite
{

namespace
{

/** Sequence counts below this use the predefined tables: a transmitted
 *  table cannot amortize over so few symbols. */
constexpr std::size_t kDynamicTableThreshold = 32;

/** Builds a fixed geometric-ish distribution over @p alphabet symbols.
 *  Both sides derive it identically, so it never travels in headers. */
fse::NormalizedCounts
makePredefined(std::size_t alphabet, unsigned table_log, double decay)
{
    std::vector<u64> pseudo(alphabet, 0);
    double weight = 1u << 16;
    for (std::size_t sym = 0; sym < alphabet; ++sym) {
        pseudo[sym] = static_cast<u64>(weight) + 1;
        weight *= decay;
    }
    auto norm = fse::normalizeCounts(pseudo, table_log);
    // Static inputs; cannot fail.
    return norm.value();
}

struct SequenceTables
{
    fse::EncodeTable ll;
    fse::EncodeTable of;
    fse::EncodeTable ml;
};

Result<fse::NormalizedCounts>
dynamicCounts(const std::vector<u8> &codes, std::size_t alphabet)
{
    std::vector<u64> freqs(alphabet, 0);
    for (u8 code : codes)
        ++freqs[code];
    u64 total = codes.size();
    unsigned log = fse::suggestTableLog(freqs, total);
    return fse::normalizeCounts(freqs, log);
}

} // namespace

const fse::NormalizedCounts &
predefinedLLCounts()
{
    static const fse::NormalizedCounts counts =
        makePredefined(kNumLLCodes, 6, 0.80);
    return counts;
}

const fse::NormalizedCounts &
predefinedOFCounts()
{
    static const fse::NormalizedCounts counts =
        makePredefined(kNumOFCodes, 5, 0.85);
    return counts;
}

const fse::NormalizedCounts &
predefinedMLCounts()
{
    static const fse::NormalizedCounts counts =
        makePredefined(kNumMLCodes, 6, 0.82);
    return counts;
}

Status
encodeSequencesSection(const std::vector<lz77::Sequence> &sequences,
                       Bytes &out, std::size_t *stream_bytes_out,
                       bool *dynamic_out)
{
    putVarint(out, sequences.size());
    if (stream_bytes_out)
        *stream_bytes_out = 0;
    if (dynamic_out)
        *dynamic_out = false;
    if (sequences.empty())
        return Status::okStatus();

    // Bin every sequence once; codes feed the tables and the stream.
    std::vector<u8> ll_codes(sequences.size());
    std::vector<u8> of_codes(sequences.size());
    std::vector<u8> ml_codes(sequences.size());
    std::vector<CodeBin> ll_bins(sequences.size());
    std::vector<CodeBin> of_bins(sequences.size());
    std::vector<CodeBin> ml_bins(sequences.size());
    for (std::size_t i = 0; i < sequences.size(); ++i) {
        const auto &seq = sequences[i];
        if (seq.matchLength < kMinMatchLength ||
            seq.matchLength > kMaxMatchLength ||
            seq.literalLength > kMaxSeqLiteralRun || seq.offset == 0) {
            return Status::invalid("sequence out of encodable range");
        }
        ll_bins[i] = literalLengthBin(seq.literalLength);
        of_bins[i] = offsetBin(seq.offset);
        ml_bins[i] = matchLengthBin(seq.matchLength);
        ll_codes[i] = ll_bins[i].code;
        of_codes[i] = of_bins[i].code;
        ml_codes[i] = ml_bins[i].code;
    }

    const bool dynamic = sequences.size() >= kDynamicTableThreshold;
    out.push_back(dynamic ? static_cast<u8>(
                                static_cast<u8>(TableMode::dynamic) |
                                (static_cast<u8>(TableMode::dynamic) << 2) |
                                (static_cast<u8>(TableMode::dynamic) << 4))
                          : 0);
    if (dynamic_out)
        *dynamic_out = dynamic;

    fse::NormalizedCounts ll_norm;
    fse::NormalizedCounts of_norm;
    fse::NormalizedCounts ml_norm;
    if (dynamic) {
        auto ll = dynamicCounts(ll_codes, kNumLLCodes);
        auto of = dynamicCounts(of_codes, kNumOFCodes);
        auto ml = dynamicCounts(ml_codes, kNumMLCodes);
        if (!ll.ok())
            return ll.status();
        if (!of.ok())
            return of.status();
        if (!ml.ok())
            return ml.status();
        ll_norm = std::move(ll).value();
        of_norm = std::move(of).value();
        ml_norm = std::move(ml).value();
        fse::serializeCounts(ll_norm, out);
        fse::serializeCounts(of_norm, out);
        fse::serializeCounts(ml_norm, out);
    } else {
        ll_norm = predefinedLLCounts();
        of_norm = predefinedOFCounts();
        ml_norm = predefinedMLCounts();
    }

    auto ll_table = fse::buildEncodeTable(ll_norm);
    auto of_table = fse::buildEncodeTable(of_norm);
    auto ml_table = fse::buildEncodeTable(ml_norm);
    if (!ll_table.ok())
        return ll_table.status();
    if (!of_table.ok())
        return of_table.status();
    if (!ml_table.ok())
        return ml_table.status();

    BitWriter writer;
    fse::Encoder ll_enc(ll_table.value());
    fse::Encoder of_enc(of_table.value());
    fse::Encoder ml_enc(ml_table.value());
    for (std::size_t i = sequences.size(); i-- > 0;) {
        const auto &seq = sequences[i];
        writer.put(seq.literalLength - ll_bins[i].baseline,
                   ll_bins[i].extraBits);
        writer.put(seq.matchLength - ml_bins[i].baseline,
                   ml_bins[i].extraBits);
        writer.put(seq.offset - of_bins[i].baseline,
                   of_bins[i].extraBits);
        CDPU_RETURN_IF_ERROR(of_enc.encode(of_codes[i], writer));
        CDPU_RETURN_IF_ERROR(ml_enc.encode(ml_codes[i], writer));
        CDPU_RETURN_IF_ERROR(ll_enc.encode(ll_codes[i], writer));
    }
    ll_enc.flushState(writer);
    ml_enc.flushState(writer);
    of_enc.flushState(writer);
    Bytes stream = writer.finish();

    putVarint(out, stream.size());
    out.insert(out.end(), stream.begin(), stream.end());
    if (stream_bytes_out)
        *stream_bytes_out = stream.size();
    return Status::okStatus();
}

Result<DecodedSequences>
decodeSequencesSection(ByteSpan data, std::size_t &pos,
                       std::size_t max_sequences)
{
    DecodedSequences result;
    auto count = getVarint(data, pos);
    if (!count.ok())
        return count.status();
    // Checked before the reserve below: a tampered count once forced
    // a 2^30-entry reservation from a handful of bytes.
    if (count.value() > max_sequences)
        return Status::corrupt("sequence count exceeds block bound");
    std::size_t num_sequences = count.value();
    if (num_sequences == 0)
        return result;

    if (pos >= data.size())
        return Status::corrupt("sequence modes truncated");
    u8 modes = data[pos++];
    bool ll_dynamic = (modes & 3) == static_cast<u8>(TableMode::dynamic);
    bool of_dynamic =
        ((modes >> 2) & 3) == static_cast<u8>(TableMode::dynamic);
    bool ml_dynamic =
        ((modes >> 4) & 3) == static_cast<u8>(TableMode::dynamic);
    result.dynamicTables = ll_dynamic || of_dynamic || ml_dynamic;

    fse::NormalizedCounts ll_norm = predefinedLLCounts();
    fse::NormalizedCounts of_norm = predefinedOFCounts();
    fse::NormalizedCounts ml_norm = predefinedMLCounts();
    if (ll_dynamic) {
        auto norm = fse::deserializeCounts(data, pos);
        if (!norm.ok())
            return norm.status();
        ll_norm = std::move(norm).value();
    }
    if (of_dynamic) {
        auto norm = fse::deserializeCounts(data, pos);
        if (!norm.ok())
            return norm.status();
        of_norm = std::move(norm).value();
    }
    if (ml_dynamic) {
        auto norm = fse::deserializeCounts(data, pos);
        if (!norm.ok())
            return norm.status();
        ml_norm = std::move(norm).value();
    }
    if (ll_norm.alphabetSize() > kNumLLCodes ||
        of_norm.alphabetSize() > kNumOFCodes ||
        ml_norm.alphabetSize() > kNumMLCodes) {
        return Status::corrupt("sequence table alphabet too large");
    }

    auto ll_table = fse::buildDecodeTable(ll_norm);
    auto of_table = fse::buildDecodeTable(of_norm);
    auto ml_table = fse::buildDecodeTable(ml_norm);
    if (!ll_table.ok())
        return ll_table.status();
    if (!of_table.ok())
        return of_table.status();
    if (!ml_table.ok())
        return ml_table.status();

    auto stream_bytes = getVarint(data, pos);
    if (!stream_bytes.ok())
        return stream_bytes.status();
    if (pos + stream_bytes.value() > data.size())
        return Status::corrupt("sequence stream truncated");
    ByteSpan stream = data.subspan(pos, stream_bytes.value());
    pos += stream_bytes.value();
    result.streamBytes = stream.size();

    auto reader = BackwardBitReader::open(stream);
    if (!reader.ok())
        return reader.status();

    fse::Decoder ll_dec(ll_table.value());
    fse::Decoder of_dec(of_table.value());
    fse::Decoder ml_dec(ml_table.value());
    CDPU_RETURN_IF_ERROR(of_dec.initState(reader.value()));
    CDPU_RETURN_IF_ERROR(ml_dec.initState(reader.value()));
    CDPU_RETURN_IF_ERROR(ll_dec.initState(reader.value()));

    result.sequences.reserve(num_sequences);
    for (std::size_t i = 0; i < num_sequences; ++i) {
        auto ll_bin = literalLengthFromCode(ll_dec.peekSymbol());
        auto of_bin = offsetFromCode(of_dec.peekSymbol());
        auto ml_bin = matchLengthFromCode(ml_dec.peekSymbol());
        if (!ll_bin.ok())
            return ll_bin.status();
        if (!of_bin.ok())
            return of_bin.status();
        if (!ml_bin.ok())
            return ml_bin.status();

        CDPU_RETURN_IF_ERROR(ll_dec.update(reader.value()));
        CDPU_RETURN_IF_ERROR(ml_dec.update(reader.value()));
        CDPU_RETURN_IF_ERROR(of_dec.update(reader.value()));

        auto of_extra = reader.value().read(of_bin.value().extraBits);
        if (!of_extra.ok())
            return of_extra.status();
        auto ml_extra = reader.value().read(ml_bin.value().extraBits);
        if (!ml_extra.ok())
            return ml_extra.status();
        auto ll_extra = reader.value().read(ll_bin.value().extraBits);
        if (!ll_extra.ok())
            return ll_extra.status();

        lz77::Sequence seq;
        seq.literalLength =
            ll_bin.value().baseline + static_cast<u32>(ll_extra.value());
        seq.matchLength =
            ml_bin.value().baseline + static_cast<u32>(ml_extra.value());
        seq.offset =
            of_bin.value().baseline + static_cast<u32>(of_extra.value());
        result.sequences.push_back(seq);
    }

    if (reader.value().bitsLeft() != 0)
        return Status::corrupt("sequence stream has trailing bits");
    if (!ll_dec.atCleanEnd(reader.value()) ||
        !ml_dec.atCleanEnd(reader.value()) ||
        !of_dec.atCleanEnd(reader.value())) {
        return Status::corrupt("sequence decoders not at clean end");
    }
    return result;
}

} // namespace cdpu::zstdlite
