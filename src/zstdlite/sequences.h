/**
 * @file
 * Sequences-section encode/decode: three interleaved FSE streams.
 *
 * Encoding walks the sequence list backward. Per sequence it writes
 * [ll extra bits, ml extra bits, of extra bits] then the state-
 * transition bits for [offset, match-length, literal-length] encoders;
 * after all sequences it flushes the ll, ml, of states. The decoder
 * therefore (reading the stream from its tail) reads the of, ml, ll
 * initial states, then per sequence takes the three symbols from the
 * current states, updates ll, ml, of, and reads of/ml/ll extra bits.
 */

#ifndef CDPU_ZSTDLITE_SEQUENCES_H_
#define CDPU_ZSTDLITE_SEQUENCES_H_

#include "fse/table.h"
#include "zstdlite/format.h"

namespace cdpu::zstdlite
{

/** The fixed table distributions shared by encoder and decoder. */
const fse::NormalizedCounts &predefinedLLCounts();
const fse::NormalizedCounts &predefinedOFCounts();
const fse::NormalizedCounts &predefinedMLCounts();

/**
 * Encodes @p sequences as a sequences section appended to @p out.
 * Dynamic FSE tables are transmitted when the sequence count justifies
 * them. Reports the bitstream length and table mode for the trace.
 */
Status encodeSequencesSection(const std::vector<lz77::Sequence> &sequences,
                              Bytes &out,
                              std::size_t *stream_bytes_out = nullptr,
                              bool *dynamic_out = nullptr);

/** Decoded sequences plus trace numbers. */
struct DecodedSequences
{
    std::vector<lz77::Sequence> sequences;
    std::size_t streamBytes = 0;
    bool dynamicTables = false;
};

/**
 * Decodes one sequences section starting at @p pos (advanced).
 *
 * @p max_sequences bounds the claimed count before anything is
 * reserved: every sequence contributes a match of at least
 * kMinMatchLength bytes to the block, so the enclosing block's
 * regenerated size caps how many sequences it can legally carry
 * (regen / kMinMatchLength + 1).
 */
Result<DecodedSequences> decodeSequencesSection(
    ByteSpan data, std::size_t &pos, std::size_t max_sequences);

} // namespace cdpu::zstdlite

#endif // CDPU_ZSTDLITE_SEQUENCES_H_
