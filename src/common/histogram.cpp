#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cdpu
{

void
WeightedHistogram::add(double bin, double weight)
{
    bins_[bin] += weight;
    total_ += weight;
}

double
WeightedHistogram::weightAt(double bin) const
{
    auto it = bins_.find(bin);
    return it == bins_.end() ? 0.0 : it->second;
}

double
WeightedHistogram::fractionAt(double bin) const
{
    if (total_ <= 0)
        return 0.0;
    return weightAt(bin) / total_;
}

std::vector<CdfPoint>
WeightedHistogram::cdf() const
{
    std::vector<CdfPoint> points;
    points.reserve(bins_.size());
    double cum = 0;
    for (const auto &[bin, weight] : bins_) {
        cum += weight;
        points.push_back({bin, total_ > 0 ? cum / total_ : 0.0});
    }
    return points;
}

double
WeightedHistogram::quantile(double q) const
{
    const auto points = cdf();
    for (const auto &p : points) {
        if (p.cumFraction >= q)
            return p.x;
    }
    return points.empty() ? 0.0 : points.back().x;
}

double
WeightedHistogram::ksDistance(const WeightedHistogram &a,
                              const WeightedHistogram &b)
{
    // Evaluate both CDFs over the union of bin edges.
    std::vector<double> edges;
    for (const auto &[bin, weight] : a.bins_)
        edges.push_back(bin);
    for (const auto &[bin, weight] : b.bins_)
        edges.push_back(bin);
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

    auto cdf_at = [](const WeightedHistogram &h, double x) {
        if (h.total_ <= 0)
            return 0.0;
        double cum = 0;
        for (const auto &[bin, weight] : h.bins_) {
            if (bin > x)
                break;
            cum += weight;
        }
        return cum / h.total_;
    };

    double dmax = 0;
    for (double x : edges)
        dmax = std::max(dmax, std::abs(cdf_at(a, x) - cdf_at(b, x)));
    return dmax;
}

unsigned
ceilLog2(u64 v)
{
    if (v <= 1)
        return 0;
    unsigned bits = floorLog2(v);
    return ((v & (v - 1)) == 0) ? bits : bits + 1;
}

unsigned
floorLog2(u64 v)
{
    unsigned bits = 0;
    while (v >>= 1)
        ++bits;
    return bits;
}

} // namespace cdpu
