/**
 * @file
 * Fast-memory primitives shared by the software codec hot paths.
 *
 * Every decoder/encoder kernel in this repo used to move bytes one at a
 * time; the levers that close the gap to production codecs (snappy,
 * zstd, lz4) are the same everywhere: unaligned word loads/stores,
 * "wild" copies that round up to 8-byte chunks into a slop margin, and
 * ctz-based match-length counting. They live here so the codec layers
 * (snappy, lz77, huffman, fse, zstdlite) share one audited
 * implementation.
 *
 * None of these primitives touch memory outside what their contracts
 * state; callers are responsible for providing the slop margins that
 * wildCopy requires. The hardware-model code (src/cdpu) deliberately
 * does NOT use this layer — it replays element streams at the
 * granularity the PUs process them (see DESIGN.md, "Software fast-path
 * kernels vs hardware-faithful modeling").
 */

#ifndef CDPU_COMMON_MEM_H_
#define CDPU_COMMON_MEM_H_

#include <bit>
#include <cstring>

#include "common/types.h"

namespace cdpu::mem
{

/** Unaligned little-endian 16-bit load. */
inline u16
loadU16(const u8 *p)
{
    u16 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/** Unaligned little-endian 32-bit load. */
inline u32
loadU32(const u8 *p)
{
    u32 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/** Unaligned little-endian 64-bit load. */
inline u64
loadU64(const u8 *p)
{
    u64 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/** Unaligned 64-bit store. */
inline void
storeU64(u8 *p, u64 v)
{
    std::memcpy(p, &v, sizeof(v));
}

/**
 * Slop margin (bytes) a destination buffer must provide past the
 * nominal end for wildCopy targets. wildCopy rounds the copied length
 * up to a multiple of 8, so a copy ending at the nominal end may write
 * up to 7 bytes beyond it; fast-path literal copies batch up to two
 * word stores, so 16 covers every kernel in this repo.
 */
inline constexpr std::size_t kWildCopySlop = 16;

/**
 * Per-thread fast-path accounting, exported into the observability
 * CounterRegistry by obs::exportKernelStats(). Raw u64 fields (not
 * obs::Counter handles) so common/ stays free of an obs dependency and
 * hot loops pay exactly one add per event.
 */
struct KernelStats
{
    u64 wildCopyBytes = 0;          ///< Bytes moved through wildCopy().
    u64 snappyFastLiterals = 0;     ///< Word-store literal fast-path hits.
    u64 snappyCarefulLiterals = 0;  ///< Bounds-exact literal copies.
    u64 snappyFastCopies = 0;       ///< Wild-copy match replays.
    u64 snappyOverlapCopies = 0;    ///< Overlap-safe (offset < 8) replays.
    u64 bitioFastRefills = 0;       ///< Word-load bit refills (forward).
    u64 bitioSlowRefills = 0;       ///< Byte-step refills (tiny streams).
    u64 bitioBackwardFastRefills = 0; ///< Word-load refills (backward).
    u64 bitioBackwardSlowRefills = 0; ///< Byte-step refills (backward).
    u64 matchWordCompares = 0;      ///< 8-byte probes in match counting.

    void reset() { *this = KernelStats{}; }

    /** Accumulates @p other into this instance, field-wise. The serve
     *  workers fold their thread's stats into a shared total this way
     *  when they finish (under the caller's lock). */
    void
    merge(const KernelStats &other)
    {
        wildCopyBytes += other.wildCopyBytes;
        snappyFastLiterals += other.snappyFastLiterals;
        snappyCarefulLiterals += other.snappyCarefulLiterals;
        snappyFastCopies += other.snappyFastCopies;
        snappyOverlapCopies += other.snappyOverlapCopies;
        bitioFastRefills += other.bitioFastRefills;
        bitioSlowRefills += other.bitioSlowRefills;
        bitioBackwardFastRefills += other.bitioBackwardFastRefills;
        bitioBackwardSlowRefills += other.bitioBackwardSlowRefills;
        matchWordCompares += other.matchWordCompares;
    }

    /** This instance minus @p before, field-wise (for windowing a
     *  thread's stats around a batch of work). */
    KernelStats
    diff(const KernelStats &before) const
    {
        KernelStats out;
        out.wildCopyBytes = wildCopyBytes - before.wildCopyBytes;
        out.snappyFastLiterals =
            snappyFastLiterals - before.snappyFastLiterals;
        out.snappyCarefulLiterals =
            snappyCarefulLiterals - before.snappyCarefulLiterals;
        out.snappyFastCopies =
            snappyFastCopies - before.snappyFastCopies;
        out.snappyOverlapCopies =
            snappyOverlapCopies - before.snappyOverlapCopies;
        out.bitioFastRefills =
            bitioFastRefills - before.bitioFastRefills;
        out.bitioSlowRefills =
            bitioSlowRefills - before.bitioSlowRefills;
        out.bitioBackwardFastRefills =
            bitioBackwardFastRefills - before.bitioBackwardFastRefills;
        out.bitioBackwardSlowRefills =
            bitioBackwardSlowRefills - before.bitioBackwardSlowRefills;
        out.matchWordCompares =
            matchWordCompares - before.matchWordCompares;
        return out;
    }
};

/**
 * The calling thread's stats instance. Thread-local so concurrent
 * codec calls never race on the accounting: each thread accumulates
 * privately and an aggregator (the serve engine, a bench main) merges
 * the per-thread copies explicitly at a quiescent point. Single-thread
 * callers see the old process-wide behavior unchanged.
 */
inline KernelStats &
kernelStats()
{
    thread_local KernelStats stats;
    return stats;
}

/**
 * Copies @p n bytes from @p src to @p dst in 8-byte chunks.
 *
 * May read up to 7 bytes past src + n and write up to 7 bytes past
 * dst + n (both bounded by kWildCopySlop). Regions must not overlap
 * unless dst >= src + 8, in which case the chunked forward copy still
 * replays an LZ match correctly (each chunk only reads bytes written
 * at least 8 positions earlier).
 */
inline void
wildCopy(u8 *dst, const u8 *src, std::size_t n)
{
    kernelStats().wildCopyBytes += n;
    for (std::size_t i = 0; i < n; i += 8)
        storeU64(dst + i, loadU64(src + i));
}

/**
 * Overlap-safe incremental copy: replays @p n bytes from
 * dst - offset into dst for small offsets (1 <= offset < 8), where a
 * word-wide copy would read bytes not yet written. Writes exactly
 * [dst, dst + n); no slop needed.
 */
inline void
incrementalCopy(u8 *dst, std::size_t offset, std::size_t n)
{
    const u8 *src = dst - offset;
    if (offset == 1) {
        std::memset(dst, src[0], n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = src[i];
}

/**
 * Number of leading bytes at which @p a and @p b agree, capped at
 * @p limit. Reads only [a, a + limit) and [b, b + limit). Compares 8
 * bytes per probe and resolves the first mismatch with a trailing-zero
 * count on little-endian hosts; byte-steps the tail (and everything,
 * on big-endian hosts).
 */
inline std::size_t
countMatchingBytes(const u8 *a, const u8 *b, std::size_t limit)
{
    std::size_t n = 0;
    if constexpr (std::endian::native == std::endian::little) {
        u64 words = 0;
        while (n + 8 <= limit) {
            ++words;
            u64 diff = loadU64(a + n) ^ loadU64(b + n);
            if (diff != 0) {
                kernelStats().matchWordCompares += words;
                return n + (static_cast<unsigned>(std::countr_zero(diff))
                            >> 3);
            }
            n += 8;
        }
        kernelStats().matchWordCompares += words;
    }
    while (n < limit && a[n] == b[n])
        ++n;
    return n;
}

} // namespace cdpu::mem

#endif // CDPU_COMMON_MEM_H_
