/**
 * @file
 * Fast-memory primitives shared by the software codec hot paths.
 *
 * Every decoder/encoder kernel in this repo used to move bytes one at a
 * time; the levers that close the gap to production codecs (snappy,
 * zstd, lz4) are the same everywhere: unaligned word loads/stores,
 * "wild" copies that round up to 8-byte chunks into a slop margin, and
 * ctz-based match-length counting. They live here so the codec layers
 * (snappy, lz77, huffman, fse, zstdlite) share one audited
 * implementation.
 *
 * None of these primitives touch memory outside what their contracts
 * state; callers are responsible for providing the slop margins that
 * wildCopy requires. The hardware-model code (src/cdpu) deliberately
 * does NOT use this layer — it replays element streams at the
 * granularity the PUs process them (see DESIGN.md, "Software fast-path
 * kernels vs hardware-faithful modeling").
 */

#ifndef CDPU_COMMON_MEM_H_
#define CDPU_COMMON_MEM_H_

#include <bit>
#include <cassert>
#include <cstring>

#include "common/kernels.h"
#include "common/types.h"

namespace cdpu::mem
{

/** Unaligned little-endian 16-bit load. */
inline u16
loadU16(const u8 *p)
{
    u16 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/** Unaligned little-endian 32-bit load. */
inline u32
loadU32(const u8 *p)
{
    u32 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/** Unaligned little-endian 64-bit load. */
inline u64
loadU64(const u8 *p)
{
    u64 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/** Unaligned 64-bit store. */
inline void
storeU64(u8 *p, u64 v)
{
    std::memcpy(p, &v, sizeof(v));
}

/**
 * Slop margin (bytes) a destination buffer must provide past the
 * nominal end for wildCopy targets. wildCopy rounds the copied length
 * up to a multiple of the active tier's store width
 * (kernels::storeWidth, at most 32 for AVX2), so a copy ending at the
 * nominal end may write up to 31 bytes beyond it — and the source must
 * be readable over the same rounded range. 32 covers every tier; the
 * margin is tier-independent so buffer reservations never depend on
 * which tier happens to be active.
 */
inline constexpr std::size_t kWildCopySlop = 32;

static_assert(kWildCopySlop >= 32,
              "slop must cover the widest kernel tier's store round-up");

/**
 * Per-thread fast-path accounting, exported into the observability
 * CounterRegistry by obs::exportKernelStats(). Raw u64 fields (not
 * obs::Counter handles) so common/ stays free of an obs dependency and
 * hot loops pay exactly one add per event.
 */
struct KernelStats
{
    u64 wildCopyBytes = 0;          ///< Bytes moved through wildCopy().
    u64 snappyFastLiterals = 0;     ///< Word-store literal fast-path hits.
    u64 snappyCarefulLiterals = 0;  ///< Bounds-exact literal copies.
    u64 snappyFastCopies = 0;       ///< Wild-copy match replays.
    u64 snappyOverlapCopies = 0;    ///< Overlap-safe (offset < 8) replays.
    u64 bitioFastRefills = 0;       ///< Word-load bit refills (forward).
    u64 bitioSlowRefills = 0;       ///< Byte-step refills (tiny streams).
    u64 bitioBackwardFastRefills = 0; ///< Word-load refills (backward).
    u64 bitioBackwardSlowRefills = 0; ///< Byte-step refills (backward).
    u64 matchWordCompares = 0;      ///< 8-byte probes in match counting.

    /** Per-tier attribution, indexed by kernels::activeTierIndex().
     *  The totals above stay tier-invariant (they count work the codec
     *  asked for); these arrays record which tier executed it, proving
     *  in exported counters that a vector path actually ran. */
    u64 tierWildCopyBytes[kernels::kNumTiers] = {};
    u64 tierCrc32cBytes[kernels::kNumTiers] = {};
    u64 tierHashPositions[kernels::kNumTiers] = {};
    u64 tierHuffSymbols[kernels::kNumTiers] = {};

    void reset() { *this = KernelStats{}; }

    /** Accumulates @p other into this instance, field-wise. The serve
     *  workers fold their thread's stats into a shared total this way
     *  when they finish (under the caller's lock). */
    void
    merge(const KernelStats &other)
    {
        wildCopyBytes += other.wildCopyBytes;
        snappyFastLiterals += other.snappyFastLiterals;
        snappyCarefulLiterals += other.snappyCarefulLiterals;
        snappyFastCopies += other.snappyFastCopies;
        snappyOverlapCopies += other.snappyOverlapCopies;
        bitioFastRefills += other.bitioFastRefills;
        bitioSlowRefills += other.bitioSlowRefills;
        bitioBackwardFastRefills += other.bitioBackwardFastRefills;
        bitioBackwardSlowRefills += other.bitioBackwardSlowRefills;
        matchWordCompares += other.matchWordCompares;
        for (unsigned t = 0; t < kernels::kNumTiers; ++t) {
            tierWildCopyBytes[t] += other.tierWildCopyBytes[t];
            tierCrc32cBytes[t] += other.tierCrc32cBytes[t];
            tierHashPositions[t] += other.tierHashPositions[t];
            tierHuffSymbols[t] += other.tierHuffSymbols[t];
        }
    }

    /** This instance minus @p before, field-wise (for windowing a
     *  thread's stats around a batch of work). */
    KernelStats
    diff(const KernelStats &before) const
    {
        KernelStats out;
        out.wildCopyBytes = wildCopyBytes - before.wildCopyBytes;
        out.snappyFastLiterals =
            snappyFastLiterals - before.snappyFastLiterals;
        out.snappyCarefulLiterals =
            snappyCarefulLiterals - before.snappyCarefulLiterals;
        out.snappyFastCopies =
            snappyFastCopies - before.snappyFastCopies;
        out.snappyOverlapCopies =
            snappyOverlapCopies - before.snappyOverlapCopies;
        out.bitioFastRefills =
            bitioFastRefills - before.bitioFastRefills;
        out.bitioSlowRefills =
            bitioSlowRefills - before.bitioSlowRefills;
        out.bitioBackwardFastRefills =
            bitioBackwardFastRefills - before.bitioBackwardFastRefills;
        out.bitioBackwardSlowRefills =
            bitioBackwardSlowRefills - before.bitioBackwardSlowRefills;
        out.matchWordCompares =
            matchWordCompares - before.matchWordCompares;
        for (unsigned t = 0; t < kernels::kNumTiers; ++t) {
            out.tierWildCopyBytes[t] =
                tierWildCopyBytes[t] - before.tierWildCopyBytes[t];
            out.tierCrc32cBytes[t] =
                tierCrc32cBytes[t] - before.tierCrc32cBytes[t];
            out.tierHashPositions[t] =
                tierHashPositions[t] - before.tierHashPositions[t];
            out.tierHuffSymbols[t] =
                tierHuffSymbols[t] - before.tierHuffSymbols[t];
        }
        return out;
    }
};

/**
 * The calling thread's stats instance. Thread-local so concurrent
 * codec calls never race on the accounting: each thread accumulates
 * privately and an aggregator (the serve engine, a bench main) merges
 * the per-thread copies explicitly at a quiescent point. Single-thread
 * callers see the old process-wide behavior unchanged.
 */
inline KernelStats &
kernelStats()
{
    thread_local KernelStats stats;
    return stats;
}

/**
 * Copies @p n bytes from @p src to @p dst in chunks of up to the
 * active kernel tier's store width.
 *
 * May read up to kWildCopySlop - 1 bytes past src + n and write up to
 * kWildCopySlop - 1 bytes past dst + n. Regions must not overlap
 * unless dst >= src + 8; the tiers clamp their chunk width to the
 * forward distance, so an LZ match replay produces the same bytes in
 * [dst, dst + n) at every tier (only slop bytes may differ, and every
 * call site trims slop).
 */
inline void
wildCopy(u8 *dst, const u8 *src, std::size_t n)
{
    KernelStats &stats = kernelStats();
    stats.wildCopyBytes += n;
    stats.tierWildCopyBytes[kernels::activeTierIndex()] += n;
    // Inline chunk loops keyed on the active tier's store width rather
    // than an indirect call through the dispatch table: most copies are
    // a handful of bytes, where call overhead would eat the vector win.
    // The fixed-size memcpy blocks compile to unaligned vector moves at
    // the baseline ISA. Chunk width is clamped to the forward overlap
    // distance (src > dst wraps to a huge value), which makes every
    // width W <= dist produce the scalar byte-by-byte LZ replay
    // semantics inside [dst, dst + n).
    const std::size_t dist = static_cast<std::size_t>(
        reinterpret_cast<std::uintptr_t>(dst) -
        reinterpret_cast<std::uintptr_t>(src));
    const unsigned width = kernels::detail::activeChunkWidth;
    if (width >= 32 && dist >= 32) {
        for (std::size_t i = 0; i < n; i += 32)
            std::memcpy(dst + i, src + i, 32);
        return;
    }
    if (width >= 16 && dist >= 16) {
        for (std::size_t i = 0; i < n; i += 16)
            std::memcpy(dst + i, src + i, 16);
        return;
    }
    for (std::size_t i = 0; i < n; i += 8)
        storeU64(dst + i, loadU64(src + i));
}

/**
 * wildCopy with the slop contract spelled out: @p capacity_end is one
 * past the destination buffer's last writable byte. Debug builds
 * assert the buffer really provides kWildCopySlop bytes of slack past
 * dst + n — the contract the AVX2 tier's 32-byte stores depend on.
 */
inline void
wildCopy(u8 *dst, const u8 *src, std::size_t n, const u8 *capacity_end)
{
    assert(dst + n + kWildCopySlop <= capacity_end &&
           "wildCopy destination lacks the kWildCopySlop slack");
    (void)capacity_end;
    wildCopy(dst, src, n);
}

/**
 * Overlap-safe incremental copy: replays @p n bytes from
 * dst - offset into dst for small offsets (1 <= offset < 8), where a
 * word-wide copy would read bytes not yet written. Writes exactly
 * [dst, dst + n); no slop needed.
 */
inline void
incrementalCopy(u8 *dst, std::size_t offset, std::size_t n)
{
    const u8 *src = dst - offset;
    if (offset == 1) {
        std::memset(dst, src[0], n);
        return;
    }
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = src[i];
}

/**
 * Number of leading bytes at which @p a and @p b agree, capped at
 * @p limit. Reads only [a, a + limit) and [b, b + limit). Compares 8
 * bytes per probe and resolves the first mismatch with a trailing-zero
 * count on little-endian hosts; byte-steps the tail (and everything,
 * on big-endian hosts).
 */
inline std::size_t
countMatchingBytes(const u8 *a, const u8 *b, std::size_t limit)
{
    std::size_t n = 0;
    if constexpr (std::endian::native == std::endian::little) {
        u64 words = 0;
        while (n + 8 <= limit) {
            ++words;
            u64 diff = loadU64(a + n) ^ loadU64(b + n);
            if (diff != 0) {
                kernelStats().matchWordCompares += words;
                return n + (static_cast<unsigned>(std::countr_zero(diff))
                            >> 3);
            }
            n += 8;
        }
        kernelStats().matchWordCompares += words;
    }
    while (n < limit && a[n] == b[n])
        ++n;
    return n;
}

} // namespace cdpu::mem

#endif // CDPU_COMMON_MEM_H_
