#include "common/table.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace cdpu
{

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header))
{}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    assert(row.size() == header_.size());
    rows_.push_back(std::move(row));
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << (c == 0 ? "| " : " | ");
            out << row[c];
            out << std::string(widths[c] - row[c].size(), ' ');
        }
        out << " |\n";
    };

    emit_row(header_);
    out << '|';
    for (std::size_t c = 0; c < header_.size(); ++c)
        out << std::string(widths[c] + 2, '-') << '|';
    out << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return out.str();
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::bytes(std::size_t n)
{
    char buf[64];
    if (n >= 1024 * 1024 && n % (1024 * 1024) == 0)
        std::snprintf(buf, sizeof(buf), "%zu MiB", n / (1024 * 1024));
    else if (n >= 1024 && n % 1024 == 0)
        std::snprintf(buf, sizeof(buf), "%zu KiB", n / 1024);
    else
        std::snprintf(buf, sizeof(buf), "%zu B", n);
    return buf;
}

std::string
TablePrinter::percent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

} // namespace cdpu
