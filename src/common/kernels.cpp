/**
 * @file
 * Tier implementations and runtime dispatch for common/kernels.h.
 *
 * Every SIMD function here carries a per-function target attribute, so
 * this translation unit builds with the project's baseline flags and
 * the vector paths are only ever *executed* after CPUID says the host
 * has them. The scalar implementations are the reference semantics;
 * each vector variant is a literal restatement of the same function at
 * a wider lane count (exact 32-bit multiplies, the same reflected
 * CRC-32C polynomial, the same forward chunked-copy order), which is
 * what makes the cross-tier byte-identity batteries meaningful rather
 * than merely hopeful.
 *
 * Overlap discipline for wildCopy: the chunk width is clamped to the
 * forward distance dst - src (computed in uintptr space, so a
 * non-overlapping src > dst wraps to a huge distance and gets the
 * widest chunk). A chunk of width W <= dist only ever reads bytes that
 * are already final, so every W produces the byte-by-byte LZ replay
 * semantics inside [dst, dst + n) — tiers can differ only in the slop
 * bytes past n, which every call site trims.
 */

#include "common/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define CDPU_KERNELS_X86 1
#endif

#if defined(__aarch64__)
#include <arm_neon.h>
#define CDPU_KERNELS_NEON 1
#endif

namespace cdpu::kernels
{

namespace
{

// Local unaligned helpers: this TU stays independent of mem.h (which
// includes kernels.h) so the header layering has no cycle.
inline u32
load32(const u8 *p)
{
    u32 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline u64
load64(const u8 *p)
{
    u64 v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline void
store64(u8 *p, u64 v)
{
    std::memcpy(p, &v, sizeof(v));
}

/** Forward distance dst - src; wraps huge when src is ahead of dst. */
inline std::size_t
forwardDistance(const u8 *dst, const u8 *src)
{
    return static_cast<std::size_t>(reinterpret_cast<uintptr_t>(dst) -
                                    reinterpret_cast<uintptr_t>(src));
}

// ---------------------------------------------------------------------------
// Scalar tier: the reference semantics (identical to PR 2's mem.h
// kernels, minus the stats attribution which now lives at dispatch
// sites).
// ---------------------------------------------------------------------------

void
wildCopyScalar(u8 *dst, const u8 *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; i += 8)
        store64(dst + i, load64(src + i));
}

constexpr u32 kCrc32cPoly = 0x82f63b78u;

struct Crc32cTable
{
    u32 byteCrc[256];
};

constexpr Crc32cTable
makeCrc32cTable()
{
    Crc32cTable table{};
    for (u32 i = 0; i < 256; ++i) {
        u32 crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? kCrc32cPoly : 0);
        table.byteCrc[i] = crc;
    }
    return table;
}

constexpr Crc32cTable kCrc32cTable = makeCrc32cTable();

u32
crc32cUpdateScalar(u32 crc, const u8 *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        crc = (crc >> 8) ^ kCrc32cTable.byteCrc[(crc ^ p[i]) & 0xff];
    return crc;
}

void
hashMul32RunScalar(const u8 *p, std::size_t count, u32 mul,
                   unsigned shift, u32 *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = (load32(p + i) * mul) >> shift;
}

void
hashXorShiftRunScalar(const u8 *p, std::size_t count, u32 mul,
                      unsigned shift, u32 *out)
{
    for (std::size_t i = 0; i < count; ++i) {
        u32 x = load32(p + i);
        x ^= x >> 15;
        x *= mul;
        x ^= x >> 12;
        out[i] = x >> shift;
    }
}

constexpr KernelOps kScalarOps = {
    wildCopyScalar,
    crc32cUpdateScalar,
    hashMul32RunScalar,
    hashXorShiftRunScalar,
};

#if CDPU_KERNELS_X86

// ---------------------------------------------------------------------------
// SSE4.2 tier: 16-byte copies, hardware CRC32C, 4-wide hashing.
// ---------------------------------------------------------------------------

/** Shuffle mask turning 16 input bytes into four overlapping 4-byte
 *  windows at consecutive positions: lanes (p+0..3, p+1..4, p+2..5,
 *  p+3..6). The same mask serves both 128-bit lanes of the AVX2
 *  variant, whose second load starts 4 positions later. */
#define CDPU_HASH_WINDOW_BYTES                                               \
    0, 1, 2, 3, 1, 2, 3, 4, 2, 3, 4, 5, 3, 4, 5, 6

__attribute__((target("sse4.2"))) void
wildCopySse42(u8 *dst, const u8 *src, std::size_t n)
{
    if (forwardDistance(dst, src) < 16) {
        wildCopyScalar(dst, src, n);
        return;
    }
    for (std::size_t i = 0; i < n; i += 16) {
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(dst + i),
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(src + i)));
    }
}

__attribute__((target("sse4.2"))) u32
crc32cUpdateSse42(u32 crc, const u8 *p, std::size_t n)
{
    u64 wide = crc;
    while (n >= 8) {
        wide = _mm_crc32_u64(wide, load64(p));
        p += 8;
        n -= 8;
    }
    u32 narrow = static_cast<u32>(wide);
    if (n >= 4) {
        narrow = _mm_crc32_u32(narrow, load32(p));
        p += 4;
        n -= 4;
    }
    while (n > 0) {
        narrow = _mm_crc32_u8(narrow, *p);
        ++p;
        --n;
    }
    return narrow;
}

__attribute__((target("sse4.2"))) void
hashMul32RunSse42(const u8 *p, std::size_t count, u32 mul,
                  unsigned shift, u32 *out)
{
    const __m128i window = _mm_setr_epi8(CDPU_HASH_WINDOW_BYTES);
    const __m128i factor = _mm_set1_epi32(static_cast<int>(mul));
    const __m128i shift_count =
        _mm_cvtsi32_si128(static_cast<int>(shift));
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        __m128i bytes =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + i));
        __m128i lanes = _mm_shuffle_epi8(bytes, window);
        __m128i hashed = _mm_srl_epi32(
            _mm_mullo_epi32(lanes, factor), shift_count);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i), hashed);
    }
    for (; i < count; ++i)
        out[i] = (load32(p + i) * mul) >> shift;
}

__attribute__((target("sse4.2"))) void
hashXorShiftRunSse42(const u8 *p, std::size_t count, u32 mul,
                     unsigned shift, u32 *out)
{
    const __m128i window = _mm_setr_epi8(CDPU_HASH_WINDOW_BYTES);
    const __m128i factor = _mm_set1_epi32(static_cast<int>(mul));
    const __m128i shift_count =
        _mm_cvtsi32_si128(static_cast<int>(shift));
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        __m128i bytes =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + i));
        __m128i x = _mm_shuffle_epi8(bytes, window);
        x = _mm_xor_si128(x, _mm_srli_epi32(x, 15));
        x = _mm_mullo_epi32(x, factor);
        x = _mm_xor_si128(x, _mm_srli_epi32(x, 12));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         _mm_srl_epi32(x, shift_count));
    }
    for (; i < count; ++i) {
        u32 x = load32(p + i);
        x ^= x >> 15;
        x *= mul;
        x ^= x >> 12;
        out[i] = x >> shift;
    }
}

const KernelOps kSse42Ops = {
    wildCopySse42,
    crc32cUpdateSse42,
    hashMul32RunSse42,
    hashXorShiftRunSse42,
};

// ---------------------------------------------------------------------------
// AVX2 tier: 32-byte copies, 8-wide hashing; CRC stays on the SSE4.2
// crc32 instruction (no wider scalar CRC unit exists).
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void
wildCopyAvx2(u8 *dst, const u8 *src, std::size_t n)
{
    std::size_t dist = forwardDistance(dst, src);
    if (dist >= 32) {
        for (std::size_t i = 0; i < n; i += 32) {
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(dst + i),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(src + i)));
        }
        return;
    }
    if (dist >= 16) {
        for (std::size_t i = 0; i < n; i += 16) {
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(dst + i),
                _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(src + i)));
        }
        return;
    }
    wildCopyScalar(dst, src, n);
}

__attribute__((target("avx2"))) void
hashMul32RunAvx2(const u8 *p, std::size_t count, u32 mul,
                 unsigned shift, u32 *out)
{
    const __m256i window = _mm256_setr_epi8(
        CDPU_HASH_WINDOW_BYTES, CDPU_HASH_WINDOW_BYTES);
    const __m256i factor = _mm256_set1_epi32(static_cast<int>(mul));
    const __m128i shift_count =
        _mm_cvtsi32_si128(static_cast<int>(shift));
    std::size_t i = 0;
    for (; i + 8 <= count; i += 8) {
        // Two 16-byte loads 4 positions apart; the per-lane shuffle
        // then yields windows i..i+3 (low lane) and i+4..i+7 (high).
        __m128i lo =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + i));
        __m128i hi = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(p + i + 4));
        __m256i bytes = _mm256_set_m128i(hi, lo);
        __m256i lanes = _mm256_shuffle_epi8(bytes, window);
        __m256i hashed = _mm256_srl_epi32(
            _mm256_mullo_epi32(lanes, factor), shift_count);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            hashed);
    }
    for (; i < count; ++i)
        out[i] = (load32(p + i) * mul) >> shift;
}

__attribute__((target("avx2"))) void
hashXorShiftRunAvx2(const u8 *p, std::size_t count, u32 mul,
                    unsigned shift, u32 *out)
{
    const __m256i window = _mm256_setr_epi8(
        CDPU_HASH_WINDOW_BYTES, CDPU_HASH_WINDOW_BYTES);
    const __m256i factor = _mm256_set1_epi32(static_cast<int>(mul));
    const __m128i shift_count =
        _mm_cvtsi32_si128(static_cast<int>(shift));
    std::size_t i = 0;
    for (; i + 8 <= count; i += 8) {
        __m128i lo =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p + i));
        __m128i hi = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(p + i + 4));
        __m256i x = _mm256_shuffle_epi8(_mm256_set_m128i(hi, lo),
                                        window);
        x = _mm256_xor_si256(x, _mm256_srli_epi32(x, 15));
        x = _mm256_mullo_epi32(x, factor);
        x = _mm256_xor_si256(x, _mm256_srli_epi32(x, 12));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            _mm256_srl_epi32(x, shift_count));
    }
    for (; i < count; ++i) {
        u32 x = load32(p + i);
        x ^= x >> 15;
        x *= mul;
        x ^= x >> 12;
        out[i] = x >> shift;
    }
}

const KernelOps kAvx2Ops = {
    wildCopyAvx2,
    crc32cUpdateSse42,
    hashMul32RunAvx2,
    hashXorShiftRunAvx2,
};

#endif // CDPU_KERNELS_X86

#if CDPU_KERNELS_NEON

// ---------------------------------------------------------------------------
// NEON tier (AArch64 baseline): 16-byte copies; CRC and hashing stay
// scalar until a measured port justifies them.
// ---------------------------------------------------------------------------

void
wildCopyNeon(u8 *dst, const u8 *src, std::size_t n)
{
    if (forwardDistance(dst, src) < 16) {
        wildCopyScalar(dst, src, n);
        return;
    }
    for (std::size_t i = 0; i < n; i += 16)
        vst1q_u8(dst + i, vld1q_u8(src + i));
}

const KernelOps kNeonOps = {
    wildCopyNeon,
    crc32cUpdateScalar,
    hashMul32RunScalar,
    hashXorShiftRunScalar,
};

#endif // CDPU_KERNELS_NEON

/** The ops table for @p tier, or nullptr when the host (or this
 *  build's architecture) cannot run it. */
const KernelOps *
opsForTier(Tier tier)
{
    switch (tier) {
      case Tier::scalar:
        return &kScalarOps;
      case Tier::sse42:
#if CDPU_KERNELS_X86
        if (__builtin_cpu_supports("sse4.2"))
            return &kSse42Ops;
#endif
        return nullptr;
      case Tier::avx2:
#if CDPU_KERNELS_X86
        if (__builtin_cpu_supports("avx2"))
            return &kAvx2Ops;
#endif
        return nullptr;
      case Tier::neon:
#if CDPU_KERNELS_NEON
        return &kNeonOps;
#else
        return nullptr;
#endif
    }
    return nullptr;
}

} // namespace

namespace detail
{
// Constant-initialized to scalar: any dynamic initializer in another
// TU that runs codec work before our startup initializer below still
// dispatches safely.
const KernelOps *activeOps = &kScalarOps;
unsigned activeTierIdx = 0;
unsigned activeChunkWidth = 8;
} // namespace detail

const char *
tierName(Tier tier)
{
    switch (tier) {
      case Tier::scalar: return "scalar";
      case Tier::sse42: return "sse42";
      case Tier::avx2: return "avx2";
      case Tier::neon: return "neon";
    }
    return "unknown";
}

Result<Tier>
tierFromName(const std::string &name)
{
    for (Tier tier : {Tier::scalar, Tier::sse42, Tier::avx2,
                      Tier::neon}) {
        if (name == tierName(tier))
            return tier;
    }
    return Status::invalid("unknown kernel tier '" + name +
                           "' (expected scalar, sse42, avx2, or neon)");
}

unsigned
storeWidth(Tier tier)
{
    switch (tier) {
      case Tier::scalar: return 8;
      case Tier::sse42: return 16;
      case Tier::avx2: return 32;
      case Tier::neon: return 16;
    }
    return 8;
}

Tier
detectedTier()
{
#if CDPU_KERNELS_X86
    if (__builtin_cpu_supports("avx2"))
        return Tier::avx2;
    if (__builtin_cpu_supports("sse4.2"))
        return Tier::sse42;
#elif CDPU_KERNELS_NEON
    return Tier::neon;
#endif
    return Tier::scalar;
}

std::vector<Tier>
availableTiers()
{
    std::vector<Tier> tiers = {Tier::scalar};
    for (Tier tier : {Tier::sse42, Tier::avx2, Tier::neon}) {
        if (opsForTier(tier) != nullptr)
            tiers.push_back(tier);
    }
    return tiers;
}

Tier
activeTier()
{
    return static_cast<Tier>(detail::activeTierIdx);
}

Status
setActiveTier(Tier tier)
{
    const KernelOps *ops = opsForTier(tier);
    if (ops == nullptr) {
        return Status::invalid(
            std::string("kernel tier '") + tierName(tier) +
            "' is not available on this host (detected: " +
            tierName(detectedTier()) + ")");
    }
    detail::activeOps = ops;
    detail::activeTierIdx = static_cast<unsigned>(tier);
    detail::activeChunkWidth = storeWidth(tier);
    return Status::okStatus();
}

Status
applyTierOverride(const std::string &name)
{
    Result<Tier> parsed = tierFromName(name);
    if (!parsed.ok())
        return parsed.status();
    return setActiveTier(parsed.value());
}

std::string
cpuFeatureSummary()
{
    std::string summary;
#if CDPU_KERNELS_X86
    summary += "x86-64";
    summary += " sse4.2=";
    summary += __builtin_cpu_supports("sse4.2") ? "1" : "0";
    summary += " avx2=";
    summary += __builtin_cpu_supports("avx2") ? "1" : "0";
#elif CDPU_KERNELS_NEON
    summary += "aarch64 neon=1";
#else
    summary += "generic";
#endif
    summary += " detected=";
    summary += tierName(detectedTier());
    return summary;
}

namespace
{

/** Startup selection: best detected tier, unless CDPU_KERNEL_TIER
 *  names an available one. An unusable override is reported once on
 *  stderr and ignored — a forced-scalar CI leg must not turn into a
 *  silent native run, and vice versa a typo must not crash tools. */
[[maybe_unused]] const bool kStartupTierSelected = [] {
    Tier tier = detectedTier();
    const char *env = std::getenv("CDPU_KERNEL_TIER");
    if (env != nullptr && env[0] != '\0') {
        Result<Tier> parsed = tierFromName(env);
        if (parsed.ok() && opsForTier(parsed.value()) != nullptr) {
            tier = parsed.value();
        } else {
            std::fprintf(stderr,
                         "CDPU_KERNEL_TIER=%s ignored: %s\n", env,
                         parsed.ok() ? "tier not available on this host"
                                     : parsed.status().message().c_str());
        }
    }
    (void)setActiveTier(tier);
    return true;
}();

} // namespace

} // namespace cdpu::kernels
