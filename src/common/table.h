/**
 * @file
 * Plain-text table rendering for benchmark and report binaries.
 *
 * Every figure-reproduction bench prints its series through TablePrinter so
 * the output rows can be compared against the paper directly.
 */

#ifndef CDPU_COMMON_TABLE_H_
#define CDPU_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace cdpu
{

/** Column-aligned ASCII table with a header row. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header);

    /** Appends one row; it must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Renders the table with aligned columns and a separator rule. */
    std::string render() const;

    /** Formats a double with @p precision fractional digits. */
    static std::string num(double v, int precision = 2);

    /** Formats a byte count as "4 KiB" / "2 MiB" / "123 B". */
    static std::string bytes(std::size_t n);

    /** Formats a fraction as a percentage string, e.g. "12.3%". */
    static std::string percent(double fraction, int precision = 1);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cdpu

#endif // CDPU_COMMON_TABLE_H_
