/**
 * @file
 * Runtime-dispatched SIMD kernel tier behind the codec hot paths.
 *
 * The scalar kernels in common/mem.h are the portable ceiling; the next
 * constant factor is vector width. This layer selects one Tier at
 * startup from CPUID feature detection (overridable with the
 * CDPU_KERNEL_TIER environment variable, or programmatically via
 * setActiveTier for tests and the --kernel-tier bench flag) and routes
 * the width-sensitive kernels through a per-tier dispatch table so call
 * sites stay tier-agnostic.
 *
 * Tier invariance is a hard contract: every kernel computes the exact
 * same function at every tier — byte-identical copies inside the
 * nominal range, bit-identical hashes and CRCs — so compressed output,
 * decoded output, and every codec-level work counter are independent
 * of the tier that produced them. Only the per-tier attribution
 * counters (mem::KernelStats tier arrays, exported as
 * kernel.<name>.<tier>) reveal which tier did the moving. The fuzz
 * batteries pin this: they replay the same streams under every
 * available tier and compare bytes.
 *
 * Dispatch is one global pointer to a const ops table. It is
 * constant-initialized to the scalar table (safe before any dynamic
 * initializer runs) and upgraded once at static-init time; switching
 * tiers afterwards (tests, benches) is not thread-safe and must happen
 * while no codec calls are in flight.
 */

#ifndef CDPU_COMMON_KERNELS_H_
#define CDPU_COMMON_KERNELS_H_

#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace cdpu::kernels
{

/** Kernel implementation tiers, ordered by vector width. */
enum class Tier : unsigned
{
    scalar = 0, ///< Portable word-wide kernels (8-byte chunks).
    sse42 = 1,  ///< 16-byte lanes + hardware CRC32C (x86 SSE4.2).
    avx2 = 2,   ///< 32-byte lanes, 8-wide hashing (x86 AVX2).
    neon = 3,   ///< 16-byte lanes (AArch64; guarded at compile time).
};

inline constexpr unsigned kNumTiers = 4;

/** Stable lowercase tier name ("scalar", "sse42", "avx2", "neon"). */
const char *tierName(Tier tier);

/** Parses a tierName() string; invalidArgument on anything else. */
Result<Tier> tierFromName(const std::string &name);

/** Widest store a tier's wildCopy may round a length up to (bytes).
 *  kWildCopySlop in mem.h must cover the widest tier's round-up. */
unsigned storeWidth(Tier tier);

/** Best tier the host CPU supports (compile target + CPUID). */
Tier detectedTier();

/** Every tier runnable on this host: scalar first, then each
 *  supported SIMD tier in ascending width order. */
std::vector<Tier> availableTiers();

/** The tier the dispatch table currently routes to. */
Tier activeTier();

/** activeTier() as an array index into the KernelStats tier arrays.
 *  Kept branch-free and inline for the hot-path attribution adds. */
unsigned activeTierIndex();

/**
 * Repoints the dispatch table at @p tier. invalidArgument if the host
 * cannot run it. NOT thread-safe: call at startup or between
 * single-threaded test phases, never with codec calls in flight.
 */
Status setActiveTier(Tier tier);

/** setActiveTier(tierFromName(name)) — the CLI/env entry point. */
Status applyTierOverride(const std::string &name);

/** One-line host feature summary for bench telemetry honesty, e.g.
 *  "x86-64 sse4.2=1 avx2=1 detected=avx2". */
std::string cpuFeatureSummary();

/**
 * Per-tier kernel entry points. All pointers are always valid; a tier
 * that has no specialized implementation for a kernel aliases the next
 * lower tier's (ultimately the scalar) implementation.
 */
struct KernelOps
{
    /**
     * Copies @p n bytes in chunks of up to storeWidth(tier) bytes.
     * May read up to storeWidth-1 bytes past src + n and write up to
     * storeWidth-1 bytes past dst + n (both bounded by
     * mem::kWildCopySlop). Forward-overlapping regions are legal for
     * dst >= src + 8: the implementation clamps its chunk width to the
     * overlap distance so an LZ match replay reads only bytes already
     * written, byte-identical to the scalar 8-byte-chunk replay.
     */
    void (*wildCopy)(u8 *dst, const u8 *src, std::size_t n);

    /**
     * CRC-32C update over the RAW (pre-inverted) reflected state —
     * callers own the ~crc conditioning at both ends. Identical
     * function at every tier; SSE4.2 uses the crc32 instruction.
     */
    u32 (*crc32cUpdate)(u32 crc, const u8 *p, std::size_t n);

    /**
     * out[i] = (loadU32(p + i) * mul) >> shift for i in [0, count):
     * the multiplicative match-finder hash over consecutive positions.
     * May read up to 15 bytes past p + count + 3; callers guard.
     * @pre 1 <= shift <= 31.
     */
    void (*hashMul32Run)(const u8 *p, std::size_t count, u32 mul,
                         unsigned shift, u32 *out);

    /**
     * Same contract for the xor-shift hash: x = loadU32(p + i);
     * x ^= x >> 15; x *= mul; x ^= x >> 12; out[i] = x >> shift.
     */
    void (*hashXorShiftRun)(const u8 *p, std::size_t count, u32 mul,
                            unsigned shift, u32 *out);
};

namespace detail
{
extern const KernelOps *activeOps;
extern unsigned activeTierIdx;
/** storeWidth(activeTier()), mirrored here so mem::wildCopy can inline
 *  its chunk loop without an indirect call (the per-copy call overhead
 *  would otherwise swamp the vector win on the short copies that
 *  dominate LZ decode). 16/32-byte chunks need no special ISA — plain
 *  std::memcpy blocks compile to unaligned vector moves. */
extern unsigned activeChunkWidth;
} // namespace detail

/** The active tier's dispatch table. */
inline const KernelOps &
ops()
{
    return *detail::activeOps;
}

inline unsigned
activeTierIndex()
{
    return detail::activeTierIdx;
}

} // namespace cdpu::kernels

#endif // CDPU_COMMON_KERNELS_H_
