#include "common/cli.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace cdpu
{

bool
CliArgs::parse(int argc, const char *const *argv,
               const std::vector<std::string> &known)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        std::string body = arg.substr(2);
        std::string name;
        std::string value;
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
        } else {
            name = body;
            // Consume the next token as a value unless it is also a flag.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        if (std::find(known.begin(), known.end(), name) == known.end()) {
            std::fprintf(stderr, "unknown flag --%s; known flags:",
                         name.c_str());
            for (const auto &k : known)
                std::fprintf(stderr, " --%s", k.c_str());
            std::fprintf(stderr, "\n");
            return false;
        }
        flags_[name] = std::move(value);
    }
    return true;
}

bool
CliArgs::has(const std::string &name) const
{
    return flags_.count(name) > 0;
}

std::string
CliArgs::getString(const std::string &name, const std::string &fallback) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
}

i64
CliArgs::getInt(const std::string &name, i64 fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

double
CliArgs::getDouble(const std::string &name, double fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
CliArgs::getBool(const std::string &name, bool fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    return it->second != "false" && it->second != "0";
}

} // namespace cdpu
