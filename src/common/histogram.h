/**
 * @file
 * Weighted histograms and empirical CDFs.
 *
 * The fleet model and HyperCompressBench validation both reason about
 * byte-weighted distributions (e.g. "% of uncompressed bytes handled by
 * calls of size <= X"), so samples carry weights.
 */

#ifndef CDPU_COMMON_HISTOGRAM_H_
#define CDPU_COMMON_HISTOGRAM_H_

#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace cdpu
{

/** One (bin, cumulative fraction) point of an empirical CDF. */
struct CdfPoint
{
    double x = 0;
    double cumFraction = 0;
};

/**
 * Weighted histogram over double-valued samples with arbitrary bins.
 *
 * Bins are keyed by their numeric value (e.g. log2 of a call size), so two
 * histograms built over the same binning are directly comparable.
 */
class WeightedHistogram
{
  public:
    /** Adds @p weight mass to the bin keyed @p bin. */
    void add(double bin, double weight = 1.0);

    /** Total mass across all bins. */
    double totalWeight() const { return total_; }

    /** Mass in @p bin (0 when absent). */
    double weightAt(double bin) const;

    /** Fraction of the total mass in @p bin (0 when empty). */
    double fractionAt(double bin) const;

    /** Sorted bins with their mass fractions. */
    std::vector<CdfPoint> cdf() const;

    /** Smallest bin whose cumulative fraction reaches @p q in [0, 1]. */
    double quantile(double q) const;

    /**
     * Kolmogorov-Smirnov style distance: the maximum absolute difference
     * between the two CDFs evaluated over the union of their bins.
     */
    static double ksDistance(const WeightedHistogram &a,
                             const WeightedHistogram &b);

    const std::map<double, double> &bins() const { return bins_; }

  private:
    std::map<double, double> bins_;
    double total_ = 0;
};

/** ceil(log2(v)) with ceilLog2(0) == 0 and ceilLog2(1) == 0. */
unsigned ceilLog2(u64 v);

/** floor(log2(v)). @pre v > 0. */
unsigned floorLog2(u64 v);

} // namespace cdpu

#endif // CDPU_COMMON_HISTOGRAM_H_
