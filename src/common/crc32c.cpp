#include "common/crc32c.h"

#include "common/kernels.h"
#include "common/mem.h"

namespace cdpu
{

u32
crc32cUpdate(u32 crc, ByteSpan data)
{
    // The tier kernels operate on the raw reflected state; the ~crc
    // conditioning stays here so every tier computes the identical
    // public function (SSE4.2's crc32 instruction implements exactly
    // this byte-table recurrence in hardware).
    mem::KernelStats &stats = mem::kernelStats();
    stats.tierCrc32cBytes[kernels::activeTierIndex()] += data.size();
    return ~kernels::ops().crc32cUpdate(~crc, data.data(), data.size());
}

u32
crc32c(ByteSpan data)
{
    return crc32cUpdate(0, data);
}

u32
maskCrc(u32 crc)
{
    return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

u32
unmaskCrc(u32 masked)
{
    u32 rot = masked - 0xa282ead8u;
    return (rot >> 17) | (rot << 15);
}

} // namespace cdpu
