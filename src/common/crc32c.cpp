#include "common/crc32c.h"

#include <array>

namespace cdpu
{

namespace
{

/** Byte-at-a-time table for the reflected Castagnoli polynomial. */
std::array<u32, 256>
makeTable()
{
    std::array<u32, 256> table{};
    for (u32 i = 0; i < 256; ++i) {
        u32 crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
        table[i] = crc;
    }
    return table;
}

const std::array<u32, 256> &
table()
{
    static const std::array<u32, 256> kTable = makeTable();
    return kTable;
}

} // namespace

u32
crc32cUpdate(u32 crc, ByteSpan data)
{
    crc = ~crc;
    for (u8 byte : data)
        crc = (crc >> 8) ^ table()[(crc ^ byte) & 0xff];
    return ~crc;
}

u32
crc32c(ByteSpan data)
{
    return crc32cUpdate(0, data);
}

u32
maskCrc(u32 crc)
{
    return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

u32
unmaskCrc(u32 masked)
{
    u32 rot = masked - 0xa282ead8u;
    return (rot >> 17) | (rot << 15);
}

} // namespace cdpu
