/**
 * @file
 * Lightweight Status/Result error propagation used by every decoder path.
 *
 * Decoders must never crash on corrupt input; they return a Status carrying
 * a category and a human-readable message instead. Result<T> couples a value
 * with a Status for fallible producers.
 */

#ifndef CDPU_COMMON_ERROR_H_
#define CDPU_COMMON_ERROR_H_

#include <string>
#include <utility>

namespace cdpu
{

/** Coarse failure categories for fallible operations. */
enum class StatusCode
{
    ok,
    corruptData,     ///< Malformed or truncated compressed stream.
    bufferTooSmall,  ///< Destination capacity insufficient.
    invalidArgument, ///< Caller supplied an out-of-range parameter.
    unsupported,     ///< Valid input requesting an unimplemented feature.
    internal,        ///< Invariant violation inside the library.
    ioError,         ///< Filesystem read/write failure (traces, reports).
};

/** Success-or-error value for operations without a payload. */
class Status
{
  public:
    /** Constructs an OK status. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    static Status okStatus() { return Status(); }

    static Status
    corrupt(std::string message)
    {
        return Status(StatusCode::corruptData, std::move(message));
    }

    static Status
    invalid(std::string message)
    {
        return Status(StatusCode::invalidArgument, std::move(message));
    }

    static Status
    unsupported(std::string message)
    {
        return Status(StatusCode::unsupported, std::move(message));
    }

    static Status
    internal(std::string message)
    {
        return Status(StatusCode::internal, std::move(message));
    }

    static Status
    io(std::string message)
    {
        return Status(StatusCode::ioError, std::move(message));
    }

    bool ok() const { return code_ == StatusCode::ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** Renders "OK" or "<category>: <message>" for logs and tests. */
    std::string
    toString() const
    {
        if (ok())
            return "OK";
        return categoryName() + ": " + message_;
    }

  private:
    std::string
    categoryName() const
    {
        switch (code_) {
          case StatusCode::ok: return "OK";
          case StatusCode::corruptData: return "CORRUPT_DATA";
          case StatusCode::bufferTooSmall: return "BUFFER_TOO_SMALL";
          case StatusCode::invalidArgument: return "INVALID_ARGUMENT";
          case StatusCode::unsupported: return "UNSUPPORTED";
          case StatusCode::internal: return "INTERNAL";
          case StatusCode::ioError: return "IO_ERROR";
        }
        return "UNKNOWN";
    }

    StatusCode code_ = StatusCode::ok;
    std::string message_;
};

/**
 * Coarse failure classes over StatusCode, the unit of comparison for
 * differential checks: a decoder fed the same bytes whole-buffer and
 * through a streaming session must land in the same class (messages
 * and exact codes may differ by path; the class may not). Decode paths
 * fed corrupt data must report dataError — usageError is for caller
 * mistakes, and fault means the library itself misbehaved.
 */
enum class FailureClass
{
    none,          ///< StatusCode::ok.
    dataError,     ///< corruptData: the bytes are bad.
    usageError,    ///< invalidArgument/unsupported: the caller is wrong.
    resourceError, ///< bufferTooSmall.
    fault,         ///< internal/ioError: the library is wrong.
};

constexpr FailureClass
failureClass(StatusCode code)
{
    switch (code) {
      case StatusCode::ok: return FailureClass::none;
      case StatusCode::corruptData: return FailureClass::dataError;
      case StatusCode::invalidArgument:
      case StatusCode::unsupported: return FailureClass::usageError;
      case StatusCode::bufferTooSmall:
        return FailureClass::resourceError;
      case StatusCode::internal:
      case StatusCode::ioError: return FailureClass::fault;
    }
    return FailureClass::fault;
}

inline FailureClass
failureClass(const Status &status)
{
    return failureClass(status.code());
}

constexpr const char *
failureClassName(FailureClass cls)
{
    switch (cls) {
      case FailureClass::none: return "none";
      case FailureClass::dataError: return "data_error";
      case FailureClass::usageError: return "usage_error";
      case FailureClass::resourceError: return "resource_error";
      case FailureClass::fault: return "fault";
    }
    return "unknown";
}

/**
 * Value-or-error wrapper. Access value() only after checking ok();
 * accessing the value of a failed Result is undefined.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(Status status) : status_(std::move(status)) {}

    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }

    T &value() & { return value_; }
    const T &value() const & { return value_; }
    T &&value() && { return std::move(value_); }

  private:
    Status status_;
    T value_{};
};

/** Propagates a non-OK status from the current function. */
#define CDPU_RETURN_IF_ERROR(expr)                                           \
    do {                                                                     \
        ::cdpu::Status cdpu_status_ = (expr);                                \
        if (!cdpu_status_.ok())                                              \
            return cdpu_status_;                                             \
    } while (false)

} // namespace cdpu

#endif // CDPU_COMMON_ERROR_H_
