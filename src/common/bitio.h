/**
 * @file
 * Bit-granular stream writers/readers used by the entropy coders.
 *
 * Two disciplines are provided:
 *  - BitWriter/BitReader: LSB-first forward streams (Huffman literals).
 *  - BackwardBitReader: reads a finished BitWriter stream from the end,
 *    which is the natural direction for tANS/FSE decoding (the encoder
 *    emits bits forward while consuming symbols backward, so the decoder
 *    consumes bits from the tail).
 *
 * Both readers refill from memory one unaligned 64-bit word at a time
 * (common/mem.h) and only fall back to byte-stepping for streams
 * shorter than a word; refill counts land in mem::kernelStats().
 */

#ifndef CDPU_COMMON_BITIO_H_
#define CDPU_COMMON_BITIO_H_

#include <cassert>

#include "common/error.h"
#include "common/mem.h"
#include "common/types.h"

namespace cdpu
{

/**
 * Accumulates bits LSB-first into a byte buffer.
 *
 * Bits are appended into a 64-bit accumulator and flushed to the output a
 * byte at a time. finish() pads the final partial byte with a terminating
 * 1-bit followed by zeros, exactly like zstd's bitstream, so a backward
 * reader can locate the last valid bit.
 */
class BitWriter
{
  public:
    /** Appends the low @p nbits bits of @p value. @pre nbits <= 56. */
    void
    put(u64 value, unsigned nbits)
    {
        assert(nbits <= 56);
        assert(nbits == 64 || (value >> nbits) == 0);
        acc_ |= value << filled_;
        filled_ += nbits;
        while (filled_ >= 8) {
            bytes_.push_back(static_cast<u8>(acc_));
            acc_ >>= 8;
            filled_ -= 8;
        }
    }

    /** Number of bits written so far (excluding the terminator). */
    u64 bitCount() const { return bytes_.size() * 8 + filled_; }

    /**
     * Terminates the stream with a marker 1-bit and returns the bytes.
     * The writer is left empty and reusable.
     */
    Bytes
    finish()
    {
        put(1, 1);
        if (filled_ > 0) {
            bytes_.push_back(static_cast<u8>(acc_));
            acc_ = 0;
            filled_ = 0;
        }
        Bytes out = std::move(bytes_);
        bytes_.clear();
        return out;
    }

  private:
    Bytes bytes_;
    u64 acc_ = 0;
    unsigned filled_ = 0;
};

/** Reads an LSB-first forward bit stream produced by BitWriter::put. */
class BitReader
{
  public:
    explicit BitReader(ByteSpan data) : data_(data) {}

    /** True when at least @p nbits remain. */
    bool
    hasBits(unsigned nbits) const
    {
        return bitPos_ + nbits <= data_.size() * 8;
    }

    /** Reads @p nbits (<= 56) LSB-first; corrupt if the stream is short. */
    Result<u64>
    read(unsigned nbits)
    {
        if (!hasBits(nbits))
            return Status::corrupt("bit stream truncated");
        u64 value = peekUnchecked(nbits);
        bitPos_ += nbits;
        return value;
    }

    u64 bitPos() const { return bitPos_; }

    /**
     * Returns the next @p nbits without consuming them; bits past the
     * end of the stream read as zero. Used by table-driven decoders
     * that peek a fixed window and then advance by the decoded length.
     */
    u64
    peek(unsigned nbits) const
    {
        u64 avail = data_.size() * 8 - bitPos_;
        unsigned take = static_cast<unsigned>(
            std::min<u64>(nbits, avail));
        return take == 0 ? 0 : peekUnchecked(take);
    }

    /** Consumes @p nbits; corrupt if fewer remain. */
    Status
    advance(unsigned nbits)
    {
        if (!hasBits(nbits))
            return Status::corrupt("bit stream truncated");
        bitPos_ += nbits;
        return Status::okStatus();
    }

  private:
    /**
     * Extracts @p nbits starting at bit @p bitPos_ with a single
     * unaligned word load when the stream allows it. @pre nbits >= 1,
     * nbits <= 56, and bitPos_ + nbits within the stream.
     */
    u64
    peekUnchecked(unsigned nbits) const
    {
        assert(nbits <= 56);
        if (nbits == 0)
            return 0;
        const u64 mask = (1ull << nbits) - 1;
        const std::size_t byte = static_cast<std::size_t>(bitPos_ >> 3);
        if (byte + 8 <= data_.size()) {
            // Word refill: one load yields >= 57 valid bits after the
            // sub-byte shift, enough for any legal nbits.
            ++mem::kernelStats().bitioFastRefills;
            return (mem::loadU64(data_.data() + byte) >>
                    (bitPos_ & 7)) & mask;
        }
        if (data_.size() >= 8) {
            // Within 8 bytes of the end: load the final word and shift
            // to the cursor. The precondition bounds the shift below 64
            // and guarantees the surviving bits cover nbits.
            ++mem::kernelStats().bitioFastRefills;
            const u64 base_bit = (data_.size() - 8) * 8;
            return (mem::loadU64(data_.data() + data_.size() - 8) >>
                    (bitPos_ - base_bit)) & mask;
        }
        // Streams shorter than one word: byte-step.
        ++mem::kernelStats().bitioSlowRefills;
        u64 acc = 0;
        unsigned got = 0;
        u64 pos = bitPos_;
        while (got < nbits) {
            u64 b = data_[pos >> 3];
            unsigned offset = pos & 7;
            unsigned take = std::min<unsigned>(8 - offset, nbits - got);
            acc |= ((b >> offset) & ((1ull << take) - 1)) << got;
            got += take;
            pos += take;
        }
        return acc;
    }

    ByteSpan data_;
    u64 bitPos_ = 0;
};

/**
 * Reads a finish()ed BitWriter stream starting from the final bit.
 *
 * init() locates the terminating 1-bit in the last byte; subsequent read()
 * calls return the most recently written bits first, which reverses the
 * encoder's order — the FSE decoder relies on this.
 */
class BackwardBitReader
{
  public:
    /** Positions the cursor just below the terminator bit. */
    static Result<BackwardBitReader>
    open(ByteSpan data)
    {
        if (data.empty())
            return Status::corrupt("empty backward bit stream");
        u8 last = data[data.size() - 1];
        if (last == 0)
            return Status::corrupt("missing bit stream terminator");
        unsigned top = 7;
        while (((last >> top) & 1) == 0)
            --top;
        BackwardBitReader reader;
        reader.data_ = data;
        reader.bitsLeft_ = (data.size() - 1) * 8 + top;
        return reader;
    }

    /** Bits still unread. */
    u64 bitsLeft() const { return bitsLeft_; }

    /**
     * Reads @p nbits in write order (the value reassembles exactly what
     * BitWriter::put received). Reading past the start is corrupt.
     */
    Result<u64>
    read(unsigned nbits)
    {
        assert(nbits <= 56);
        if (nbits > bitsLeft_)
            return Status::corrupt("backward bit stream underflow");
        bitsLeft_ -= nbits;
        if (nbits == 0)
            return u64{0};
        const u64 mask = (1ull << nbits) - 1;
        const std::size_t byte =
            static_cast<std::size_t>(bitsLeft_ >> 3);
        if (byte + 8 <= data_.size()) {
            // Word refill at the new cursor; the sub-byte shift leaves
            // >= 57 valid bits, enough for any legal nbits.
            ++mem::kernelStats().bitioBackwardFastRefills;
            return (mem::loadU64(data_.data() + byte) >>
                    (bitsLeft_ & 7)) & mask;
        }
        if (data_.size() >= 8) {
            // Near the stream tail: load the final word. The cursor
            // plus nbits never passes the terminator bit, which bounds
            // the shift below 64 and keeps nbits bits in range.
            ++mem::kernelStats().bitioBackwardFastRefills;
            const u64 base_bit = (data_.size() - 8) * 8;
            return (mem::loadU64(data_.data() + data_.size() - 8) >>
                    (bitsLeft_ - base_bit)) & mask;
        }
        ++mem::kernelStats().bitioBackwardSlowRefills;
        u64 acc = 0;
        for (unsigned got = 0; got < nbits;) {
            u64 pos = bitsLeft_ + got;
            u64 b = data_[pos >> 3];
            unsigned offset = pos & 7;
            unsigned take = std::min<unsigned>(8 - offset, nbits - got);
            acc |= ((b >> offset) & ((1ull << take) - 1)) << got;
            got += take;
        }
        return acc;
    }

    /** Constructs an empty reader; use open() to create a usable one. */
    BackwardBitReader() = default;

  private:
    ByteSpan data_;
    u64 bitsLeft_ = 0;
};

} // namespace cdpu

#endif // CDPU_COMMON_BITIO_H_
