/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64 seeded
 * xoshiro256**). Every stochastic component in the repository draws from
 * this generator so results are reproducible from a single seed.
 */

#ifndef CDPU_COMMON_RNG_H_
#define CDPU_COMMON_RNG_H_

#include <cassert>
#include <cmath>

#include "common/types.h"

namespace cdpu
{

/** xoshiro256** PRNG with SplitMix64 seeding. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull)
    {
        u64 x = seed;
        for (auto &word : state_) {
            // SplitMix64 step.
            x += 0x9e3779b97f4a7c15ull;
            u64 z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next 64 uniformly random bits. */
    u64
    next()
    {
        u64 result = rotl(state_[1] * 5, 7) * 9;
        u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    u64
    below(u64 bound)
    {
        assert(bound > 0);
        // Rejection sampling to avoid modulo bias.
        u64 threshold = (0 - bound) % bound;
        for (;;) {
            u64 r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    u64
    range(u64 lo, u64 hi)
    {
        assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Standard normal variate (Box-Muller). */
    double
    normal()
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    }

    /** Log-normal variate with the given parameters of the underlying
     *  normal distribution. */
    double
    logNormal(double mu, double sigma)
    {
        return std::exp(mu + sigma * normal());
    }

    /** Geometric-ish exponential variate with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        if (u < 1e-300)
            u = 1e-300;
        return -mean * std::log(u);
    }

  private:
    static u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    u64 state_[4];
};

} // namespace cdpu

#endif // CDPU_COMMON_RNG_H_
