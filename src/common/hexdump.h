/**
 * @file
 * Hex-dump helpers for debugging compressed stream layouts in tests.
 */

#ifndef CDPU_COMMON_HEXDUMP_H_
#define CDPU_COMMON_HEXDUMP_H_

#include <string>

#include "common/types.h"

namespace cdpu
{

/** Renders @p data as a classic 16-bytes-per-line hex+ASCII dump. */
std::string hexDump(ByteSpan data, std::size_t max_bytes = 256);

} // namespace cdpu

#endif // CDPU_COMMON_HEXDUMP_H_
