/**
 * @file
 * Fundamental type aliases shared across the CDPU code base.
 */

#ifndef CDPU_COMMON_TYPES_H_
#define CDPU_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace cdpu
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Owned byte buffer used for (un)compressed payloads. */
using Bytes = std::vector<u8>;

/** Non-owning view over a byte payload. */
using ByteSpan = std::span<const u8>;

/** One kibibyte, in bytes. */
inline constexpr std::size_t kKiB = 1024;
/** One mebibyte, in bytes. */
inline constexpr std::size_t kMiB = 1024 * kKiB;

} // namespace cdpu

#endif // CDPU_COMMON_TYPES_H_
