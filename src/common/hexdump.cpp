#include "common/hexdump.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace cdpu
{

std::string
hexDump(ByteSpan data, std::size_t max_bytes)
{
    std::ostringstream out;
    std::size_t n = std::min(data.size(), max_bytes);
    char buf[24];
    for (std::size_t base = 0; base < n; base += 16) {
        std::snprintf(buf, sizeof(buf), "%08zx  ", base);
        out << buf;
        for (std::size_t i = 0; i < 16; ++i) {
            if (base + i < n) {
                std::snprintf(buf, sizeof(buf), "%02x ", data[base + i]);
                out << buf;
            } else {
                out << "   ";
            }
        }
        out << ' ';
        for (std::size_t i = 0; i < 16 && base + i < n; ++i) {
            u8 c = data[base + i];
            out << (std::isprint(c) ? static_cast<char>(c) : '.');
        }
        out << '\n';
    }
    if (n < data.size())
        out << "... (" << data.size() - n << " more bytes)\n";
    return out.str();
}

} // namespace cdpu
