/**
 * @file
 * Minimal command-line flag parsing for the example and bench binaries.
 *
 * Flags take the form --name=value or --name value; bare --name sets a
 * boolean flag. Unknown flags are an error so typos fail loudly.
 */

#ifndef CDPU_COMMON_CLI_H_
#define CDPU_COMMON_CLI_H_

#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace cdpu
{

/** Parsed command line with typed accessors and defaults. */
class CliArgs
{
  public:
    /**
     * Parses argv. @p known lists the accepted flag names; an unknown
     * flag prints usage to stderr and returns false.
     */
    bool parse(int argc, const char *const *argv,
               const std::vector<std::string> &known);

    bool has(const std::string &name) const;
    std::string getString(const std::string &name,
                          const std::string &fallback) const;
    i64 getInt(const std::string &name, i64 fallback) const;
    double getDouble(const std::string &name, double fallback) const;
    bool getBool(const std::string &name, bool fallback) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace cdpu

#endif // CDPU_COMMON_CLI_H_
