/**
 * @file
 * LEB128-style varint encoding shared by the Snappy preamble and the
 * ZstdLite frame header.
 */

#ifndef CDPU_COMMON_VARINT_H_
#define CDPU_COMMON_VARINT_H_

#include "common/error.h"
#include "common/types.h"

namespace cdpu
{

/** Appends @p value to @p out as a little-endian base-128 varint. */
void putVarint(Bytes &out, u64 value);

/**
 * Decodes a varint from @p data starting at @p pos.
 *
 * On success advances @p pos past the varint and returns the value. Fails
 * on truncation or on encodings longer than 10 bytes.
 */
Result<u64> getVarint(ByteSpan data, std::size_t &pos);

/**
 * Decodes a 32-bit varint: at most 5 bytes, value < 2^32.
 *
 * Snappy's preamble caps lengths at 32 bits, so its decoder must hold
 * the wire format to the matching encoding bound: a fifth byte may
 * carry only bits 28-31 (high nibble clear, no continuation), and
 * anything longer — including non-canonical zero-padded encodings that
 * getVarint() would accept — is corruptData, not a value.
 */
Result<u32> getVarint32(ByteSpan data, std::size_t &pos);

/** Number of bytes putVarint would emit for @p value. */
std::size_t varintSize(u64 value);

} // namespace cdpu

#endif // CDPU_COMMON_VARINT_H_
