/**
 * @file
 * LEB128-style varint encoding shared by the Snappy preamble and the
 * ZstdLite frame header.
 */

#ifndef CDPU_COMMON_VARINT_H_
#define CDPU_COMMON_VARINT_H_

#include "common/error.h"
#include "common/types.h"

namespace cdpu
{

/** Appends @p value to @p out as a little-endian base-128 varint. */
void putVarint(Bytes &out, u64 value);

/**
 * Decodes a varint from @p data starting at @p pos.
 *
 * On success advances @p pos past the varint and returns the value. Fails
 * on truncation or on encodings longer than 10 bytes.
 */
Result<u64> getVarint(ByteSpan data, std::size_t &pos);

/** Number of bytes putVarint would emit for @p value. */
std::size_t varintSize(u64 value);

} // namespace cdpu

#endif // CDPU_COMMON_VARINT_H_
