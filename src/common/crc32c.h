/**
 * @file
 * CRC-32C (Castagnoli) checksums, as used by the Snappy framing format
 * and most storage-path integrity checks in hyperscale systems.
 */

#ifndef CDPU_COMMON_CRC32C_H_
#define CDPU_COMMON_CRC32C_H_

#include "common/types.h"

namespace cdpu
{

/** CRC-32C of @p data (reflected polynomial 0x82f63b78). */
u32 crc32c(ByteSpan data);

/** Incremental update: feeds @p data into a running CRC state.
 *  Start from 0; the final value equals crc32c() of the whole input. */
u32 crc32cUpdate(u32 crc, ByteSpan data);

/**
 * Snappy's masked CRC: rotates and offsets the raw CRC so that
 * checksumming data that embeds CRCs stays well-conditioned
 * (google/snappy framing_format.txt, section 3).
 */
u32 maskCrc(u32 crc);

/** Inverse of maskCrc(). */
u32 unmaskCrc(u32 masked);

} // namespace cdpu

#endif // CDPU_COMMON_CRC32C_H_
