#include "common/varint.h"

namespace cdpu
{

void
putVarint(Bytes &out, u64 value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<u8>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<u8>(value));
}

Result<u64>
getVarint(ByteSpan data, std::size_t &pos)
{
    u64 value = 0;
    unsigned shift = 0;
    for (std::size_t n = 0; n < 10; ++n) {
        if (pos >= data.size())
            return Status::corrupt("varint truncated");
        u8 byte = data[pos++];
        value |= static_cast<u64>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return value;
        shift += 7;
    }
    return Status::corrupt("varint longer than 10 bytes");
}

Result<u32>
getVarint32(ByteSpan data, std::size_t &pos)
{
    u32 value = 0;
    for (unsigned n = 0; n < 5; ++n) {
        if (pos >= data.size())
            return Status::corrupt("varint truncated");
        u8 byte = data[pos++];
        // Byte 5 holds bits 28-31: a set continuation bit or any
        // payload above bit 31 pushes the value past 2^32 (or into a
        // non-canonical >5-byte encoding).
        if (n == 4 && (byte & 0xf0) != 0)
            return Status::corrupt("varint exceeds 32 bits");
        value |= static_cast<u32>(byte & 0x7f) << (7 * n);
        if ((byte & 0x80) == 0)
            return value;
    }
    return Status::corrupt("varint longer than 5 bytes");
}

std::size_t
varintSize(u64 value)
{
    std::size_t n = 1;
    while (value >= 0x80) {
        value >>= 7;
        ++n;
    }
    return n;
}

} // namespace cdpu
