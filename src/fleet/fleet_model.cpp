#include "fleet/fleet_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cdpu::fleet
{

std::vector<FleetCodec>
allFleetCodecs()
{
    return {FleetCodec::snappy, FleetCodec::zstd,
            FleetCodec::flate, FleetCodec::brotli,
            FleetCodec::gipfeli, FleetCodec::lzo};
}

std::string
fleetCodecName(FleetCodec algorithm)
{
    switch (algorithm) {
      case FleetCodec::snappy: return "Snappy";
      case FleetCodec::zstd: return "ZSTD";
      case FleetCodec::flate: return "Flate";
      case FleetCodec::brotli: return "Brotli";
      case FleetCodec::gipfeli: return "Gipfeli";
      case FleetCodec::lzo: return "LZO";
    }
    return "unknown";
}

std::string
directionPrefix(Direction direction)
{
    return direction == Direction::compress ? "C" : "D";
}

bool
isHeavyweight(FleetCodec algorithm)
{
    switch (algorithm) {
      case FleetCodec::zstd:
      case FleetCodec::flate:
      case FleetCodec::brotli:
        return true;
      case FleetCodec::snappy:
      case FleetCodec::gipfeli:
      case FleetCodec::lzo:
        return false;
    }
    return false;
}

std::vector<std::string>
libraryCategories()
{
    return {"RPC",          "Filetype1",  "Other",
            "Unknown",      "Filetype3.1", "Filetype2",
            "MixedResourceShuffle", "Filetype4", "Filetype3",
            "Filetype5",    "InMemShuffle", "InMemMap",
            "Filetype7",    "Filetype8",  "InStorageShuffle",
            "Filetype6"};
}

namespace
{

/** Fills a histogram from parallel (bin, fraction) arrays. */
void
fillHistogram(WeightedHistogram &histogram,
              std::initializer_list<std::pair<int, double>> bins)
{
    for (const auto &[bin, weight] : bins)
        histogram.add(bin, weight);
}

/** Logistic adoption curve in [0, 1]. */
double
logistic(double month, double midpoint, double steepness)
{
    return 1.0 / (1.0 + std::exp(-(month - midpoint) / steepness));
}

} // namespace

FleetModel::FleetModel()
{
    using A = FleetCodec;
    using D = Direction;

    // Figure 1 legend: final-slice cycle shares (percent / 100).
    finalCycleShares_ = {
        {{A::snappy, D::compress}, 0.195},
        {{A::zstd, D::compress}, 0.154},
        {{A::flate, D::compress}, 0.059},
        {{A::brotli, D::compress}, 0.033},
        {{A::gipfeli, D::compress}, 0.001},
        {{A::lzo, D::compress}, 0.0005},
        {{A::snappy, D::decompress}, 0.203},
        {{A::zstd, D::decompress}, 0.258},
        {{A::flate, D::decompress}, 0.052},
        {{A::brotli, D::decompress}, 0.040},
        {{A::gipfeli, D::decompress}, 0.004},
        {{A::lzo, D::decompress}, 0.001},
    };

    // Figure 2a: share of all fleet uncompressed bytes per channel.
    // Compression handles 1/(1+3.3) of bytes (each compressed byte is
    // decompressed 3.3x); heavyweight algorithms cover 36% of
    // compressed and 49% of decompressed bytes.
    const double comp_total = 1.0 / (1.0 + kDecompressionsPerByte);
    const double deco_total = 1.0 - comp_total;
    const std::map<A, double> comp_within = {
        {A::snappy, 0.58}, {A::zstd, 0.26},    {A::flate, 0.06},
        {A::brotli, 0.04}, {A::gipfeli, 0.04}, {A::lzo, 0.02},
    };
    const std::map<A, double> deco_within = {
        {A::snappy, 0.43}, {A::zstd, 0.38},    {A::flate, 0.07},
        {A::brotli, 0.04}, {A::gipfeli, 0.05}, {A::lzo, 0.03},
    };
    for (const auto &[algo, frac] : comp_within)
        byteShares_[{algo, D::compress}] = frac * comp_total;
    for (const auto &[algo, frac] : deco_within)
        byteShares_[{algo, D::decompress}] = frac * deco_total;

    // Figure 2b: byte-weighted ZStd level distribution. 88% at <= 3,
    // 95% at <= 5, < 0.002% at >= 12.
    zstdLevels_ = {
        {-3, 0.04}, {-1, 0.06}, {1, 0.08},  {2, 0.10},
        {3, 0.60},  {4, 0.04},  {5, 0.03},  {6, 0.02},
        {7, 0.013}, {9, 0.012}, {11, 0.00498}, {12, 0.00001},
        {19, 0.00001},
    };

    // Figure 2c: aggregate achieved ratios. ZStd-low is 1.46x Snappy;
    // ZStd-high a further 1.35x; everything >= 2.
    ratios_ = {
        {"Flate All", 3.3},    {"ZSTD [4,22]", 4.05},
        {"ZSTD [-inf,3]", 3.0}, {"Snappy", 2.05},
        {"Brotli All", 2.3},
    };

    // Figure 4: cycle share by calling library (percent / 100).
    libraries_ = {
        {"RPC", 0.139},          {"Filetype1", 0.132},
        {"Other", 0.130},        {"Unknown", 0.112},
        {"Filetype3.1", 0.097},  {"Filetype2", 0.095},
        {"MixedResourceShuffle", 0.093}, {"Filetype4", 0.069},
        {"Filetype3", 0.060},    {"Filetype5", 0.027},
        {"InMemShuffle", 0.017}, {"InMemMap", 0.015},
        {"Filetype7", 0.006},    {"Filetype8", 0.004},
        {"InStorageShuffle", 0.002}, {"Filetype6", 0.001},
    };

    // Figure 3: byte-weighted call sizes, bin = ceil(log2(bytes)).
    // Snappy-C: 24% <= 32 KiB, median in (64, 128] KiB, 16.8% in
    // (2, 4] MiB.
    fillHistogram(callSizes_[{A::snappy, D::compress}],
                  {{10, 0.010}, {11, 0.015}, {12, 0.020}, {13, 0.035},
                   {14, 0.060}, {15, 0.100}, {16, 0.130}, {17, 0.140},
                   {18, 0.090}, {19, 0.080}, {20, 0.070}, {21, 0.060},
                   {22, 0.168}, {23, 0.010}, {24, 0.005}, {25, 0.004},
                   {26, 0.003}});
    // ZStd-C: 8% <= 32 KiB, 28% in (32, 64] KiB, median in (64, 128].
    fillHistogram(callSizes_[{A::zstd, D::compress}],
                  {{10, 0.005}, {11, 0.005}, {12, 0.010}, {13, 0.015},
                   {14, 0.020}, {15, 0.025}, {16, 0.280}, {17, 0.160},
                   {18, 0.054}, {19, 0.053}, {20, 0.053}, {21, 0.053},
                   {22, 0.053}, {23, 0.053}, {24, 0.053}, {25, 0.053},
                   {26, 0.055}});
    // Snappy-D: 62% < 128 KiB, 80% < 256 KiB.
    fillHistogram(callSizes_[{A::snappy, D::decompress}],
                  {{10, 0.020}, {11, 0.030}, {12, 0.050}, {13, 0.070},
                   {14, 0.090}, {15, 0.110}, {16, 0.120}, {17, 0.130},
                   {18, 0.180}, {19, 0.050}, {20, 0.045}, {21, 0.035},
                   {22, 0.030}, {23, 0.020}, {24, 0.010}, {25, 0.006},
                   {26, 0.004}});
    // ZStd-D: median in (1, 2] MiB.
    fillHistogram(callSizes_[{A::zstd, D::decompress}],
                  {{10, 0.005}, {11, 0.005}, {12, 0.005}, {13, 0.005},
                   {14, 0.005}, {15, 0.005}, {16, 0.030}, {17, 0.050},
                   {18, 0.080}, {19, 0.120}, {20, 0.150}, {21, 0.170},
                   {22, 0.130}, {23, 0.090}, {24, 0.070}, {25, 0.050},
                   {26, 0.030}});
    // The other four algorithms reuse the shape of their weight class
    // (no per-call sampling exists for them; Section 3.1.2).
    for (A algo : {A::flate, A::brotli}) {
        callSizes_[{algo, D::compress}] =
            callSizes_[{A::zstd, D::compress}];
        callSizes_[{algo, D::decompress}] =
            callSizes_[{A::zstd, D::decompress}];
    }
    for (A algo : {A::gipfeli, A::lzo}) {
        callSizes_[{algo, D::compress}] =
            callSizes_[{A::snappy, D::compress}];
        callSizes_[{algo, D::decompress}] =
            callSizes_[{A::snappy, D::decompress}];
    }

    // Call-count distributions: byte mass divided by a bin's
    // representative size gives the relative number of calls.
    for (const auto &[channel, histogram] : callSizes_) {
        WeightedHistogram &counts = callCounts_[channel];
        for (const auto &[bin, weight] : histogram.bins())
            counts.add(bin, weight / std::pow(2.0, bin));
    }

    // Figure 5: ZStd window sizes, bin = log2(bytes).
    // Compression: ~50% <= 32 KiB, 75th pct in (512 KiB, 1 MiB].
    fillHistogram(windowCompress_,
                  {{10, 0.02}, {11, 0.04}, {12, 0.07}, {13, 0.10},
                   {14, 0.12}, {15, 0.16}, {16, 0.06}, {17, 0.05},
                   {18, 0.05}, {19, 0.07}, {20, 0.08}, {21, 0.06},
                   {22, 0.05}, {23, 0.04}, {24, 0.03}});
    // Decompression: median 1 MiB.
    fillHistogram(windowDecompress_,
                  {{10, 0.01}, {11, 0.01}, {12, 0.02}, {13, 0.03},
                   {14, 0.05}, {15, 0.08}, {16, 0.06}, {17, 0.06},
                   {18, 0.08}, {19, 0.09}, {20, 0.11}, {21, 0.12},
                   {22, 0.11}, {23, 0.09}, {24, 0.08}});
}

double
FleetModel::cycleShare(const Channel &channel) const
{
    auto it = finalCycleShares_.find(channel);
    return it == finalCycleShares_.end() ? 0.0 : it->second;
}

double
FleetModel::cycleShareAt(const Channel &channel, unsigned month) const
{
    // Adoption multipliers per algorithm over the Figure 1 series:
    // ZStd appears around month 48 and reaches a large share within
    // ~a year; Brotli ramps slowly; Gipfeli/LZO/Flate decline; Snappy
    // absorbs the remainder early on.
    auto adoption = [month](FleetCodec algorithm) {
        double m = month;
        switch (algorithm) {
          case FleetCodec::zstd:
            return logistic(m, 57.0, 4.0);
          case FleetCodec::brotli:
            return logistic(m, 60.0, 14.0);
          case FleetCodec::gipfeli:
            return 1.0 + 24.0 * (1.0 - logistic(m, 30.0, 10.0));
          case FleetCodec::lzo:
            return 1.0 + 30.0 * (1.0 - logistic(m, 24.0, 10.0));
          case FleetCodec::flate:
            return 1.0 + 2.5 * (1.0 - logistic(m, 40.0, 16.0));
          case FleetCodec::snappy:
            return 1.0 + 0.8 * (1.0 - logistic(m, 44.0, 18.0));
        }
        return 1.0;
    };

    double weighted = cycleShare(channel) * adoption(channel.algorithm);
    double total = 0;
    for (FleetCodec algorithm : allFleetCodecs()) {
        for (Direction direction :
             {Direction::compress, Direction::decompress}) {
            Channel other{algorithm, direction};
            total += cycleShare(other) * adoption(algorithm);
        }
    }
    return total > 0 ? weighted / total : 0.0;
}

double
FleetModel::byteShare(const Channel &channel) const
{
    auto it = byteShares_.find(channel);
    return it == byteShares_.end() ? 0.0 : it->second;
}

double
FleetModel::aggregateRatio(const std::string &bin) const
{
    auto it = ratios_.find(bin);
    return it == ratios_.end() ? 0.0 : it->second;
}

std::vector<std::string>
FleetModel::ratioBins() const
{
    return {"Flate All", "ZSTD [4,22]", "ZSTD [-inf,3]", "Snappy",
            "Brotli All"};
}

const WeightedHistogram &
FleetModel::callSizeDistribution(const Channel &channel) const
{
    return callSizes_.at(channel);
}

const WeightedHistogram &
FleetModel::windowSizeDistribution(Direction direction) const
{
    return direction == Direction::compress ? windowCompress_
                                            : windowDecompress_;
}

Channel
FleetModel::sampleChannel(Rng &rng) const
{
    double u = rng.uniform();
    double cum = 0;
    for (const auto &[channel, share] : finalCycleShares_) {
        cum += share;
        if (u < cum)
            return channel;
    }
    return finalCycleShares_.rbegin()->first;
}

Channel
FleetModel::sampleChannelAt(unsigned month, Rng &rng) const
{
    double u = rng.uniform();
    double cum = 0;
    Channel last{};
    for (const auto &[channel, share] : finalCycleShares_) {
        double month_share = cycleShareAt(channel, month);
        cum += month_share;
        last = channel;
        if (u < cum)
            return channel;
    }
    return last;
}

std::string
FleetModel::sampleLibrary(Rng &rng) const
{
    double u = rng.uniform();
    double cum = 0;
    for (const auto &[library, share] : libraries_) {
        cum += share;
        if (u < cum)
            return library;
    }
    return libraries_.rbegin()->first;
}

std::size_t
FleetModel::sampleCallSize(const Channel &channel, Rng &rng,
                           std::size_t cap_bytes) const
{
    const WeightedHistogram &histogram = callCounts_.at(channel);
    double bin = histogram.quantile(rng.uniform());
    // Bin b covers (2^(b-1), 2^b]; draw log-uniform within it.
    double hi = std::pow(2.0, bin);
    double lo = hi / 2.0;
    double size = lo * std::pow(2.0, rng.uniform());
    auto bytes = static_cast<std::size_t>(size);
    if (cap_bytes != 0)
        bytes = std::min(bytes, cap_bytes);
    return std::max<std::size_t>(bytes, 1);
}

int
FleetModel::sampleZstdLevel(Rng &rng) const
{
    double u = rng.uniform();
    double cum = 0;
    for (const auto &[level, weight] : zstdLevels_) {
        cum += weight;
        if (u < cum)
            return level;
    }
    return zstdLevels_.rbegin()->first;
}

std::size_t
FleetModel::sampleWindowSize(Direction direction, Rng &rng) const
{
    const WeightedHistogram &histogram =
        windowSizeDistribution(direction);
    double bin = histogram.quantile(rng.uniform());
    return static_cast<std::size_t>(std::pow(2.0, bin));
}

} // namespace cdpu::fleet
