/**
 * @file
 * Synthetic fleet model: the ground-truth distributions of a simulated
 * hyperscale fleet's (de)compression usage.
 *
 * Substitutes Google's private GWP profiling data (DESIGN.md §2
 * item 1). Every constant here is taken from a number the paper
 * publishes (Figures 1-5, Sections 3.2-3.6); the GWP-style sampler
 * (gwp_sampler.h) then re-derives the paper's figures by sampling this
 * model, demonstrating the full profiling pipeline end-to-end.
 */

#ifndef CDPU_FLEET_FLEET_MODEL_H_
#define CDPU_FLEET_FLEET_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/types.h"

namespace cdpu::fleet
{

/** All six fleet algorithms (Section 2.2). */
enum class FleetCodec
{
    snappy,
    zstd,
    flate,
    brotli,
    gipfeli,
    lzo,
};

enum class Direction
{
    compress,
    decompress,
};

std::vector<FleetCodec> allFleetCodecs();
std::string fleetCodecName(FleetCodec algorithm);
std::string directionPrefix(Direction direction); ///< "C" or "D".

/** Whether the taxonomy of Section 2.2 calls this heavyweight. */
bool isHeavyweight(FleetCodec algorithm);

/** One (algorithm, direction) usage channel. */
struct Channel
{
    FleetCodec algorithm = FleetCodec::snappy;
    Direction direction = Direction::compress;

    bool operator<(const Channel &other) const
    {
        if (algorithm != other.algorithm)
            return algorithm < other.algorithm;
        return direction < other.direction;
    }

    std::string
    name() const
    {
        return directionPrefix(direction) + "-" +
               fleetCodecName(algorithm);
    }
};

/** Calling-library categories of Figure 4. */
std::vector<std::string> libraryCategories();

/** The fleet's ground truth. */
class FleetModel
{
  public:
    FleetModel();

    /** Months covered by the Figure 1 time series (8 years). */
    static constexpr unsigned kMonths = 96;

    /** Fraction of fleet-wide CPU cycles spent in (de)compression
     *  (Section 3.2). */
    static constexpr double kFleetCycleFraction = 0.029;

    /** Fraction of (de)compression cycles spent decompressing. */
    static constexpr double kDecompressCycleShare = 0.56;

    /** Times each compressed byte is decompressed (Section 3.3.1). */
    static constexpr double kDecompressionsPerByte = 3.3;

    /** Final-month cycle share of @p channel within all
     *  (de)compression cycles (Figure 1 legend). */
    double cycleShare(const Channel &channel) const;

    /** Cycle share of @p channel in a given month, normalized within
     *  the month (Figure 1 series). */
    double cycleShareAt(const Channel &channel, unsigned month) const;

    /** Share of fleet uncompressed bytes handled by @p channel
     *  (Figure 2a; compression inputs / decompression outputs). */
    double byteShare(const Channel &channel) const;

    /** Byte-weighted ZStd compression-level distribution (Figure 2b);
     *  keys are levels, values are fractions. */
    const std::map<int, double> &zstdLevelDistribution() const
    {
        return zstdLevels_;
    }

    /** Aggregate achieved compression ratio for Figure 2c bins. */
    double aggregateRatio(const std::string &bin) const;
    std::vector<std::string> ratioBins() const;

    /** Relative cost-per-byte multipliers (Section 3.3.4). */
    static constexpr double kZstdLowOverSnappyCompressCost = 1.55;
    static constexpr double kZstdHighOverLowCompressCost = 2.39;
    static constexpr double kZstdOverSnappyDecompressCost = 1.63;

    /** Byte-weighted call-size distribution for @p channel, binned by
     *  ceil(log2(bytes)) (Figure 3). */
    const WeightedHistogram &callSizeDistribution(
        const Channel &channel) const;

    /** Cycle share by calling library (Figure 4). */
    const std::map<std::string, double> &libraryShares() const
    {
        return libraries_;
    }

    /** Byte-weighted ZStd window-size distribution, binned by
     *  log2(bytes) (Figure 5). */
    const WeightedHistogram &windowSizeDistribution(
        Direction direction) const;

    // --- Sampling helpers (used by GwpSampler and HyperCompressBench) --

    /** Draws a channel with probability equal to its cycle share. */
    Channel sampleChannel(Rng &rng) const;

    /** Draws a channel for a given month of the Figure 1 series. */
    Channel sampleChannelAt(unsigned month, Rng &rng) const;

    /** Draws a library category per Figure 4. */
    std::string sampleLibrary(Rng &rng) const;

    /**
     * Draws one call's size (bytes) for @p channel, log-uniform within
     * a bin drawn from the *call-count* distribution (byte weight
     * divided by bin size). Byte-weighted histograms of such draws
     * converge to callSizeDistribution(), matching how GWP samples
     * calls while the paper plots byte-weighted CDFs.
     */
    std::size_t sampleCallSize(const Channel &channel, Rng &rng,
                               std::size_t cap_bytes = 0) const;

    /** Draws a ZStd compression level per Figure 2b. */
    int sampleZstdLevel(Rng &rng) const;

    /** Draws a ZStd window size (bytes) per Figure 5. */
    std::size_t sampleWindowSize(Direction direction, Rng &rng) const;

  private:
    std::map<Channel, double> finalCycleShares_;
    std::map<Channel, double> byteShares_;
    std::map<int, double> zstdLevels_;
    std::map<std::string, double> ratios_;
    std::map<std::string, double> libraries_;
    std::map<Channel, WeightedHistogram> callSizes_;
    std::map<Channel, WeightedHistogram> callCounts_;
    WeightedHistogram windowCompress_;
    WeightedHistogram windowDecompress_;
};

} // namespace cdpu::fleet

#endif // CDPU_FLEET_FLEET_MODEL_H_
