#include "fleet/reports.h"

#include <algorithm>

namespace cdpu::fleet
{

std::vector<ShareRow>
channelCycleShares(const std::vector<ProfileRecord> &records,
                   const FleetModel &model)
{
    std::map<std::string, std::size_t> counts;
    for (const auto &record : records)
        ++counts[record.channel.name()];

    std::vector<ShareRow> rows;
    for (FleetCodec algorithm : allFleetCodecs()) {
        for (Direction direction :
             {Direction::compress, Direction::decompress}) {
            Channel channel{algorithm, direction};
            ShareRow row;
            row.label = channel.name();
            row.measured = records.empty()
                               ? 0.0
                               : static_cast<double>(
                                     counts[channel.name()]) /
                                     static_cast<double>(records.size());
            row.groundTruth = model.cycleShare(channel);
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

std::vector<double>
channelTimeline(const std::vector<ProfileRecord> &records,
                const Channel &channel)
{
    std::vector<std::size_t> hits(FleetModel::kMonths, 0);
    std::vector<std::size_t> totals(FleetModel::kMonths, 0);
    for (const auto &record : records) {
        if (record.month >= FleetModel::kMonths)
            continue;
        ++totals[record.month];
        if (record.channel.algorithm == channel.algorithm &&
            record.channel.direction == channel.direction) {
            ++hits[record.month];
        }
    }
    std::vector<double> shares(FleetModel::kMonths, 0.0);
    for (unsigned month = 0; month < FleetModel::kMonths; ++month) {
        if (totals[month] > 0)
            shares[month] = static_cast<double>(hits[month]) /
                            static_cast<double>(totals[month]);
    }
    return shares;
}

std::map<int, double>
zstdLevelShares(const std::vector<ProfileRecord> &records)
{
    // Levels are sampled from the byte-weighted Figure 2b
    // distribution, so unweighted record counts already estimate byte
    // shares (re-weighting by call size would double-count bytes).
    std::map<int, double> byte_mass;
    double total = 0;
    for (const auto &record : records) {
        if (record.channel.algorithm != FleetCodec::zstd ||
            record.channel.direction != Direction::compress) {
            continue;
        }
        byte_mass[record.zstdLevel] += 1.0;
        total += 1.0;
    }
    if (total > 0) {
        for (auto &[level, mass] : byte_mass)
            mass /= total;
    }
    return byte_mass;
}

WeightedHistogram
callSizeHistogram(const std::vector<ProfileRecord> &records,
                  const Channel &channel)
{
    WeightedHistogram histogram;
    for (const auto &record : records) {
        if (record.channel.algorithm != channel.algorithm ||
            record.channel.direction != channel.direction) {
            continue;
        }
        histogram.add(ceilLog2(record.callBytes),
                      static_cast<double>(record.callBytes));
    }
    return histogram;
}

std::vector<ShareRow>
libraryShares(const std::vector<ProfileRecord> &records,
              const FleetModel &model)
{
    std::map<std::string, std::size_t> counts;
    for (const auto &record : records)
        ++counts[record.library];

    std::vector<ShareRow> rows;
    for (const std::string &library : libraryCategories()) {
        ShareRow row;
        row.label = library;
        row.measured =
            records.empty()
                ? 0.0
                : static_cast<double>(counts[library]) /
                      static_cast<double>(records.size());
        row.groundTruth = model.libraryShares().at(library);
        rows.push_back(std::move(row));
    }
    return rows;
}

WeightedHistogram
windowSizeHistogram(const std::vector<ProfileRecord> &records,
                    Direction direction)
{
    WeightedHistogram histogram;
    for (const auto &record : records) {
        if (record.channel.algorithm != FleetCodec::zstd ||
            record.channel.direction != direction ||
            record.windowBytes == 0) {
            continue;
        }
        histogram.add(floorLog2(record.windowBytes),
                      static_cast<double>(record.callBytes));
    }
    return histogram;
}

double
heavyweightByteShare(const std::vector<ProfileRecord> &records,
                     Direction direction)
{
    double heavy = 0;
    double total = 0;
    for (const auto &record : records) {
        if (record.channel.direction != direction)
            continue;
        total += static_cast<double>(record.callBytes);
        if (isHeavyweight(record.channel.algorithm))
            heavy += static_cast<double>(record.callBytes);
    }
    return total > 0 ? heavy / total : 0.0;
}

} // namespace cdpu::fleet
