/**
 * @file
 * Report builders: reconstruct the paper's profiling figures from
 * sampled GWP records (and, where the paper reports ground truth, from
 * the model directly for side-by-side comparison).
 */

#ifndef CDPU_FLEET_REPORTS_H_
#define CDPU_FLEET_REPORTS_H_

#include "fleet/gwp_sampler.h"

namespace cdpu::fleet
{

/** Measured vs ground-truth share for one label. */
struct ShareRow
{
    std::string label;
    double measured = 0;
    double groundTruth = 0;
};

/** Figure 1 (final slice): cycle share per channel from samples. */
std::vector<ShareRow> channelCycleShares(
    const std::vector<ProfileRecord> &records, const FleetModel &model);

/** Figure 1 (series): per-month share for one channel. */
std::vector<double> channelTimeline(
    const std::vector<ProfileRecord> &records, const Channel &channel);

/** Figure 2b: byte-weighted ZStd level distribution from samples. */
std::map<int, double> zstdLevelShares(
    const std::vector<ProfileRecord> &records);

/** Figure 3: byte-weighted call-size CDF for one channel. */
WeightedHistogram callSizeHistogram(
    const std::vector<ProfileRecord> &records, const Channel &channel);

/** Figure 4: cycle share per calling library. */
std::vector<ShareRow> libraryShares(
    const std::vector<ProfileRecord> &records, const FleetModel &model);

/** Figure 5: byte-weighted ZStd window-size CDF. */
WeightedHistogram windowSizeHistogram(
    const std::vector<ProfileRecord> &records, Direction direction);

/** Heavyweight share of sampled bytes for @p direction (Fig 2a). */
double heavyweightByteShare(const std::vector<ProfileRecord> &records,
                            Direction direction);

} // namespace cdpu::fleet

#endif // CDPU_FLEET_REPORTS_H_
