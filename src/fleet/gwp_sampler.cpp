#include "fleet/gwp_sampler.h"

namespace cdpu::fleet
{

ProfileRecord
GwpSampler::sampleAt(unsigned month)
{
    ProfileRecord record;
    record.month = month;
    record.channel = model_->sampleChannelAt(month, rng_);
    record.library = model_->sampleLibrary(rng_);
    record.callBytes = model_->sampleCallSize(record.channel, rng_);
    if (record.channel.algorithm == FleetCodec::zstd) {
        record.zstdLevel = model_->sampleZstdLevel(rng_);
        record.windowBytes =
            model_->sampleWindowSize(record.channel.direction, rng_);
    }
    return record;
}

std::vector<ProfileRecord>
GwpSampler::sampleFinalMonth(std::size_t count)
{
    std::vector<ProfileRecord> records;
    records.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        records.push_back(sampleAt(FleetModel::kMonths - 1));
    return records;
}

std::vector<ProfileRecord>
GwpSampler::sampleTimeline(std::size_t per_month)
{
    std::vector<ProfileRecord> records;
    records.reserve(per_month * FleetModel::kMonths);
    for (unsigned month = 0; month < FleetModel::kMonths; ++month)
        for (std::size_t i = 0; i < per_month; ++i)
            records.push_back(sampleAt(month));
    return records;
}

} // namespace cdpu::fleet
