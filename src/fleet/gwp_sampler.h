/**
 * @file
 * GWP-style sampling profiler over the synthetic fleet.
 *
 * Google-Wide Profiling (Section 3.1) randomly samples servers and
 * records where cycles go. This sampler draws the same record types
 * from the FleetModel ground truth; the report builders then
 * reconstruct every figure from samples alone, so the whole
 * profiling-to-analysis pipeline is exercised, not just tabulated.
 */

#ifndef CDPU_FLEET_GWP_SAMPLER_H_
#define CDPU_FLEET_GWP_SAMPLER_H_

#include "fleet/fleet_model.h"

namespace cdpu::fleet
{

/** One sampled (de)compression profile record. */
struct ProfileRecord
{
    Channel channel;
    unsigned month = 0;       ///< Slot in the Figure 1 series.
    std::string library;      ///< Calling library (Figure 4).
    std::size_t callBytes = 0;///< Uncompressed bytes of the call.
    int zstdLevel = 0;        ///< Valid when channel.algorithm==zstd.
    std::size_t windowBytes = 0; ///< Valid for ZStd channels.
};

/** Batch sampler with a deterministic seed. */
class GwpSampler
{
  public:
    GwpSampler(const FleetModel &model, u64 seed)
        : model_(&model), rng_(seed)
    {}

    /** Samples one cycle-weighted record for @p month. */
    ProfileRecord sampleAt(unsigned month);

    /** Samples @p count records for the final month. */
    std::vector<ProfileRecord> sampleFinalMonth(std::size_t count);

    /** Samples @p per_month records for every month of the series. */
    std::vector<ProfileRecord> sampleTimeline(std::size_t per_month);

  private:
    const FleetModel *model_;
    Rng rng_;
};

} // namespace cdpu::fleet

#endif // CDPU_FLEET_GWP_SAMPLER_H_
