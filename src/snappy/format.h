/**
 * @file
 * Snappy wire-format definitions.
 *
 * Implemented from the published format description
 * (google/snappy format_description.txt): a varint uncompressed-length
 * preamble followed by tagged elements. The low two bits of each tag byte
 * select the element type; literals of up to 60 bytes encode their length
 * in the tag, longer literals use 1-4 extra length bytes. Copies come in
 * 1-, 2- and 4-byte-offset flavors.
 */

#ifndef CDPU_SNAPPY_FORMAT_H_
#define CDPU_SNAPPY_FORMAT_H_

#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace cdpu::snappy
{

/** Element tag types (low 2 bits of the tag byte). */
enum class ElementType : u8
{
    literal = 0,
    copy1 = 1, ///< 4-11 byte length, 11-bit offset.
    copy2 = 2, ///< 1-64 byte length, 16-bit offset.
    copy4 = 3, ///< 1-64 byte length, 32-bit offset.
};

/** One decoded stream element, consumed by both the software decoder and
 *  the CDPU decompressor model. */
struct Element
{
    ElementType type = ElementType::literal;
    u32 length = 0;     ///< Bytes produced by this element.
    u32 offset = 0;     ///< Copy distance (0 for literals).
    std::size_t src = 0; ///< For literals: position of the bytes in the
                         ///< compressed stream.
};

/** Snappy compresses in independent 64 KiB fragments; matches never span
 *  a fragment boundary and offsets never exceed this. */
inline constexpr std::size_t kBlockSize = 64 * kKiB;

/** Longest literal length encodable in the tag byte alone. */
inline constexpr u32 kMaxInlineLiteral = 60;

/**
 * Parses the element stream following the preamble.
 *
 * @param data        Full compressed buffer.
 * @param pos         Offset of the first tag byte (past the preamble).
 * @param expected    Claimed uncompressed size (bounds validation).
 * @param elements    Output element list, appended in stream order.
 * @return OK, or a corruption status describing the first defect.
 */
Status decodeElements(ByteSpan data, std::size_t pos, u64 expected,
                      std::vector<Element> &elements);

} // namespace cdpu::snappy

#endif // CDPU_SNAPPY_FORMAT_H_
