#include "snappy/decompress.h"

#include <algorithm>

#include "common/varint.h"

namespace cdpu::snappy
{

Status
decodeElements(ByteSpan data, std::size_t pos, u64 expected,
               std::vector<Element> &elements)
{
    u64 produced = 0;
    while (pos < data.size()) {
        u8 tag = data[pos++];
        Element el;
        el.type = static_cast<ElementType>(tag & 3);
        switch (el.type) {
          case ElementType::literal: {
            u32 n = tag >> 2;
            if (n >= kMaxInlineLiteral) {
                unsigned extra = n - kMaxInlineLiteral + 1; // 1..4 bytes
                if (pos + extra > data.size())
                    return Status::corrupt("literal length truncated");
                n = 0;
                for (unsigned i = 0; i < extra; ++i)
                    n |= static_cast<u32>(data[pos++]) << (8 * i);
            }
            el.length = n + 1;
            el.src = pos;
            if (pos + el.length > data.size())
                return Status::corrupt("literal body truncated");
            pos += el.length;
            break;
          }
          case ElementType::copy1: {
            if (pos + 1 > data.size())
                return Status::corrupt("copy1 truncated");
            el.length = 4 + ((tag >> 2) & 0x7);
            el.offset = (static_cast<u32>(tag >> 5) << 8) | data[pos++];
            break;
          }
          case ElementType::copy2: {
            if (pos + 2 > data.size())
                return Status::corrupt("copy2 truncated");
            el.length = (tag >> 2) + 1;
            el.offset = static_cast<u32>(data[pos]) |
                        (static_cast<u32>(data[pos + 1]) << 8);
            pos += 2;
            break;
          }
          case ElementType::copy4: {
            if (pos + 4 > data.size())
                return Status::corrupt("copy4 truncated");
            el.length = (tag >> 2) + 1;
            el.offset = 0;
            for (unsigned i = 0; i < 4; ++i)
                el.offset |= static_cast<u32>(data[pos++]) << (8 * i);
            break;
          }
        }
        if (el.type != ElementType::literal) {
            if (el.offset == 0)
                return Status::corrupt("copy with zero offset");
            if (el.offset > produced)
                return Status::corrupt("copy offset exceeds history");
        }
        produced += el.length;
        if (produced > expected)
            return Status::corrupt("stream produces more than preamble");
        elements.push_back(el);
    }
    if (produced != expected)
        return Status::corrupt("stream produces less than preamble");
    return Status::okStatus();
}

Result<u64>
uncompressedLength(ByteSpan data)
{
    std::size_t pos = 0;
    return getVarint(data, pos);
}

Status
applyElements(ByteSpan data, const std::vector<Element> &elements,
              u64 expected_size, Bytes &out)
{
    out.clear();
    // Reserve conservatively: the preamble is untrusted until the
    // element stream fully validates.
    out.reserve(std::min<u64>(expected_size, 64 * kMiB));
    for (const auto &el : elements) {
        if (el.type == ElementType::literal) {
            out.insert(out.end(), data.begin() + el.src,
                       data.begin() + el.src + el.length);
        } else {
            if (el.offset > out.size())
                return Status::corrupt("copy offset exceeds history");
            std::size_t from = out.size() - el.offset;
            for (u32 i = 0; i < el.length; ++i)
                out.push_back(out[from + i]);
        }
    }
    if (out.size() != expected_size)
        return Status::internal("element replay size mismatch");
    return Status::okStatus();
}

Result<Bytes>
decompress(ByteSpan data)
{
    std::size_t pos = 0;
    auto length = getVarint(data, pos);
    if (!length.ok())
        return length.status();
    if (length.value() > (1ull << 32))
        return Status::corrupt("implausible uncompressed length");

    std::vector<Element> elements;
    CDPU_RETURN_IF_ERROR(
        decodeElements(data, pos, length.value(), elements));

    Bytes out;
    CDPU_RETURN_IF_ERROR(applyElements(data, elements, length.value(), out));
    return out;
}

} // namespace cdpu::snappy
