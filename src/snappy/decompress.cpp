#include "snappy/decompress.h"

#include <algorithm>
#include <cstring>

#include "common/mem.h"
#include "common/varint.h"

namespace cdpu::snappy
{

Status
decodeElements(ByteSpan data, std::size_t pos, u64 expected,
               std::vector<Element> &elements)
{
    u64 produced = 0;
    while (pos < data.size()) {
        u8 tag = data[pos++];
        Element el;
        el.type = static_cast<ElementType>(tag & 3);
        switch (el.type) {
          case ElementType::literal: {
            u32 n = tag >> 2;
            if (n >= kMaxInlineLiteral) {
                unsigned extra = n - kMaxInlineLiteral + 1; // 1..4 bytes
                if (pos + extra > data.size())
                    return Status::corrupt("literal length truncated");
                n = 0;
                for (unsigned i = 0; i < extra; ++i)
                    n |= static_cast<u32>(data[pos++]) << (8 * i);
            }
            el.length = n + 1;
            if (pos + el.length > data.size())
                return Status::corrupt("literal body truncated");
            el.src = pos;
            pos += el.length;
            break;
          }
          case ElementType::copy1: {
            if (pos + 1 > data.size())
                return Status::corrupt("copy1 truncated");
            el.length = 4 + ((tag >> 2) & 0x7);
            el.offset = (static_cast<u32>(tag >> 5) << 8) | data[pos++];
            break;
          }
          case ElementType::copy2: {
            if (pos + 2 > data.size())
                return Status::corrupt("copy2 truncated");
            el.length = (tag >> 2) + 1;
            el.offset = static_cast<u32>(data[pos]) |
                        (static_cast<u32>(data[pos + 1]) << 8);
            pos += 2;
            break;
          }
          case ElementType::copy4: {
            if (pos + 4 > data.size())
                return Status::corrupt("copy4 truncated");
            el.length = (tag >> 2) + 1;
            el.offset = 0;
            for (unsigned i = 0; i < 4; ++i)
                el.offset |= static_cast<u32>(data[pos++]) << (8 * i);
            break;
          }
        }
        if (el.type != ElementType::literal) {
            if (el.offset == 0)
                return Status::corrupt("copy with zero offset");
            if (el.offset > produced)
                return Status::corrupt("copy offset exceeds history");
        }
        produced += el.length;
        if (produced > expected)
            return Status::corrupt("stream produces more than preamble");
        elements.push_back(el);
    }
    if (produced != expected)
        return Status::corrupt("stream produces less than preamble");
    return Status::okStatus();
}

Result<u64>
uncompressedLength(ByteSpan data)
{
    std::size_t pos = 0;
    auto length = getVarint32(data, pos);
    if (!length.ok())
        return length.status();
    return static_cast<u64>(length.value());
}

Status
applyElements(ByteSpan data, const std::vector<Element> &elements,
              u64 expected_size, Bytes &out)
{
    out.clear();
    // Reserve conservatively: the preamble is untrusted until the
    // element stream fully validates.
    out.reserve(std::min<u64>(expected_size, 64 * kMiB));
    for (const auto &el : elements) {
        if (el.type == ElementType::literal) {
            out.insert(out.end(), data.begin() + el.src,
                       data.begin() + el.src + el.length);
        } else {
            if (el.offset > out.size())
                return Status::corrupt("copy offset exceeds history");
            // Resize once, then replay by index: growing via per-byte
            // push_back re-checks capacity (and may reallocate) on
            // every byte of every copy.
            std::size_t start = out.size();
            std::size_t from = start - el.offset;
            out.resize(start + el.length);
            for (u32 i = 0; i < el.length; ++i)
                out[start + i] = out[from + i]; // Overlap is legal.
        }
    }
    if (out.size() != expected_size)
        return Status::internal("element replay size mismatch");
    return Status::okStatus();
}

namespace
{

/**
 * Densest legal element: a copy2 turns 3 stream bytes into up to 64
 * output bytes. A preamble claiming more than body * 64/3 bytes can
 * therefore be rejected before allocating anything.
 */
constexpr u64 kMaxExpansionNum = 64;
constexpr u64 kMaxExpansionDen = 3;

} // namespace

Status
decompressInto(ByteSpan data, Bytes &out)
{
    out.clear();
    std::size_t pos = 0;
    // The format caps the uncompressed length at 32 bits; getVarint32
    // holds the wire encoding to that bound (<= 5 canonical bytes), so
    // over-long encodings and values >= 2^32 both die here.
    auto length = getVarint32(data, pos);
    if (!length.ok())
        return length.status();
    const u64 expected = length.value();
    const std::size_t body = data.size() - pos;
    if (expected * kMaxExpansionDen > body * kMaxExpansionNum)
        return Status::corrupt("stream cannot produce claimed length");

    if (expected == 0) {
        if (body != 0)
            return Status::corrupt("stream produces more than preamble");
        return Status::okStatus();
    }

    // Single pass: validate and emit in one walk over the tag stream.
    // The buffer is pre-sized with a slop margin so match replays and
    // short literals can use rounded-up word copies without a
    // per-element end-of-buffer branch; the slop is trimmed on return.
    out.resize(expected + mem::kWildCopySlop);
    u8 *dst = out.data();
    std::size_t op = 0; // Bytes produced so far.
    const u8 *ip = data.data() + pos;
    const u8 *ip_end = data.data() + data.size();
    mem::KernelStats &stats = mem::kernelStats();

    while (ip < ip_end) {
        const u8 tag = *ip++;
        if ((tag & 3) == static_cast<u8>(ElementType::literal)) {
            u32 n = tag >> 2;
            u64 len;
            if (n < kMaxInlineLiteral) {
                len = n + 1; // 1..60
                // Fast path: enough input left to round the read up to
                // the widest kernel tier's chunk, and enough claimed
                // output for the write (the slop margin absorbs the
                // rounded-up store). The guard uses the constant
                // kWildCopySlop, not the active tier's width, so the
                // fast/careful split — and its counters — stay
                // tier-invariant.
                if (len + mem::kWildCopySlop <=
                        static_cast<std::size_t>(ip_end - ip) &&
                    op + len <= expected) {
                    mem::wildCopy(dst + op, ip, len,
                                  dst + out.size());
                    ++stats.snappyFastLiterals;
                    ip += len;
                    op += len;
                    continue;
                }
            } else {
                const unsigned extra = n - kMaxInlineLiteral + 1; // 1..4
                if (extra > static_cast<std::size_t>(ip_end - ip))
                    return Status::corrupt("literal length truncated");
                n = 0;
                for (unsigned i = 0; i < extra; ++i)
                    n |= static_cast<u32>(ip[i]) << (8 * i);
                ip += extra;
                len = static_cast<u64>(n) + 1;
            }
            // Careful path: exact bounds on both ends (stream tail or
            // long literal).
            if (len > static_cast<std::size_t>(ip_end - ip))
                return Status::corrupt("literal body truncated");
            if (op + len > expected)
                return Status::corrupt(
                    "stream produces more than preamble");
            std::memcpy(dst + op, ip, len);
            ++stats.snappyCarefulLiterals;
            ip += len;
            op += len;
        } else {
            u32 len;
            u32 offset;
            switch (static_cast<ElementType>(tag & 3)) {
              case ElementType::copy1: {
                if (ip_end - ip < 1)
                    return Status::corrupt("copy1 truncated");
                len = 4 + ((tag >> 2) & 0x7);
                offset = (static_cast<u32>(tag >> 5) << 8) | *ip;
                ip += 1;
                break;
              }
              case ElementType::copy2: {
                if (ip_end - ip < 2)
                    return Status::corrupt("copy2 truncated");
                len = (tag >> 2) + 1;
                offset = mem::loadU16(ip);
                ip += 2;
                break;
              }
              default: { // copy4
                if (ip_end - ip < 4)
                    return Status::corrupt("copy4 truncated");
                len = (tag >> 2) + 1;
                offset = mem::loadU32(ip);
                ip += 4;
                break;
              }
            }
            if (offset == 0)
                return Status::corrupt("copy with zero offset");
            if (offset > op)
                return Status::corrupt("copy offset exceeds history");
            if (op + len > expected)
                return Status::corrupt(
                    "stream produces more than preamble");
            if (offset >= 8) {
                // Chunked replay; the slop margin absorbs the
                // rounded-up final store, and offset >= 8 guarantees
                // every chunk reads bytes already written (the tiers
                // clamp chunk width to the offset).
                mem::wildCopy(dst + op, dst + op - offset, len,
                              dst + out.size());
                ++stats.snappyFastCopies;
            } else {
                mem::incrementalCopy(dst + op, offset, len);
                ++stats.snappyOverlapCopies;
            }
            op += len;
        }
    }
    if (op != expected)
        return Status::corrupt("stream produces less than preamble");
    out.resize(expected);
    return Status::okStatus();
}

Result<Bytes>
decompress(ByteSpan data)
{
    Bytes out;
    CDPU_RETURN_IF_ERROR(decompressInto(data, out));
    return out;
}

} // namespace cdpu::snappy
