/**
 * @file
 * Snappy framing format: the streaming equivalent of the buffer API
 * (the paper's Section 3.4 notes compression APIs come in stateless
 * buffer form "and a streaming equivalent").
 *
 * Implements google/snappy framing_format.txt: a stream-identifier
 * chunk followed by compressed/uncompressed data chunks of at most
 * 64 KiB of source data, each carrying a masked CRC-32C. Arbitrary
 * skippable and padding chunks are tolerated on decode.
 */

#ifndef CDPU_SNAPPY_FRAMING_H_
#define CDPU_SNAPPY_FRAMING_H_

#include "snappy/compress.h"

namespace cdpu::snappy
{

/** Chunk type bytes from the framing spec. */
enum class ChunkType : u8
{
    compressedData = 0x00,
    uncompressedData = 0x01,
    padding = 0xfe,
    streamIdentifier = 0xff,
};

/** Maximum uncompressed payload per data chunk (spec: 65536). */
inline constexpr std::size_t kMaxChunkPayload = 65536;

/**
 * Incremental framed compressor. Feed any amount of data through
 * write(); each internal 64 KiB window becomes one chunk (compressed
 * when that wins, uncompressed otherwise, as the spec recommends).
 */
class FrameWriter
{
  public:
    FrameWriter();

    /** Appends more source data. */
    void write(ByteSpan data);

    /** Flushes buffered data into a final chunk and returns the
     *  complete framed stream. The writer resets for reuse. */
    Bytes finish();

  private:
    void emitChunk(ByteSpan payload);

    Bytes out_;
    Bytes pending_;
    CompressorConfig config_;
};

/** One-shot framed compression. */
Bytes frameCompress(ByteSpan data);

/**
 * Decodes a framed stream, verifying the stream identifier and every
 * chunk CRC. Returns the reassembled source data; corrupt framing,
 * bad CRCs, or truncated chunks fail with corruptData.
 */
Result<Bytes> frameDecompress(ByteSpan framed);

} // namespace cdpu::snappy

#endif // CDPU_SNAPPY_FRAMING_H_
