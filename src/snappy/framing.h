/**
 * @file
 * Snappy framing format: the streaming equivalent of the buffer API
 * (the paper's Section 3.4 notes compression APIs come in stateless
 * buffer form "and a streaming equivalent").
 *
 * Implements google/snappy framing_format.txt: a stream-identifier
 * chunk followed by compressed/uncompressed data chunks of at most
 * 64 KiB of source data, each carrying a masked CRC-32C. Arbitrary
 * skippable and padding chunks are tolerated on decode.
 *
 * Both directions are incremental so the codec layer's streaming
 * sessions can run over bounded scratch: FrameWriter accepts input in
 * any granularity and emits a chunk per 64 KiB window; FrameReader
 * accepts framed bytes in any granularity and decodes every chunk the
 * moment it is complete. A stream that ends mid-chunk is corrupt —
 * finish() reports corruptData, never a short success.
 */

#ifndef CDPU_SNAPPY_FRAMING_H_
#define CDPU_SNAPPY_FRAMING_H_

#include "snappy/compress.h"

namespace cdpu::snappy
{

/** Chunk type bytes from the framing spec. */
enum class ChunkType : u8
{
    compressedData = 0x00,
    uncompressedData = 0x01,
    padding = 0xfe,
    streamIdentifier = 0xff,
};

/** Maximum uncompressed payload per data chunk (spec: 65536). */
inline constexpr std::size_t kMaxChunkPayload = 65536;

/**
 * Incremental framed compressor. Feed any amount of data through
 * write(); each internal 64 KiB window becomes one chunk (compressed
 * when that wins, uncompressed otherwise, as the spec recommends).
 * Emitted chunks depend only on cumulative input, never on write()
 * granularity, so chunked and whole-buffer use produce identical
 * streams.
 */
class FrameWriter
{
  public:
    FrameWriter();

    /** Appends more source data. */
    void write(ByteSpan data);

    /** Moves chunks finished so far to the end of @p out (incremental
     *  drain; does not flush the partial window). Returns the number
     *  of bytes appended. */
    std::size_t drainInto(Bytes &out);

    /** Flushes buffered data into a final chunk, appends everything
     *  undrained to @p out, and resets the writer for reuse. */
    void finishInto(Bytes &out);

    /** One-shot form of finishInto: returns the complete framed
     *  stream (including previously undrained chunks). */
    Bytes finish();

  private:
    void emitChunk(ByteSpan payload);

    Bytes out_;
    Bytes pending_;
    CompressorConfig config_;
};

/**
 * Incremental framed decompressor. feed() decodes every chunk that is
 * complete in the bytes seen so far (verifying the stream identifier
 * and per-chunk CRCs); drainInto() hands decoded bytes to the caller;
 * finish() validates termination — leftover partial-chunk bytes mean
 * the stream was truncated and yield corruptData.
 *
 * Errors are sticky: after a corrupt chunk every later call reports
 * the same status.
 */
class FrameReader
{
  public:
    /** Appends framed bytes and decodes all complete chunks. */
    Status feed(ByteSpan data);

    /** Declares end of stream; fails if a chunk is still partial or
     *  the stream identifier never appeared. */
    Status finish();

    /** Moves decoded bytes to the end of @p out; returns the count. */
    std::size_t drainInto(Bytes &out);

  private:
    Status processChunk(u8 type_byte, ByteSpan body);

    Bytes buffer_;              ///< Undecoded framed bytes.
    std::size_t cursor_ = 0;    ///< Start of the first unparsed chunk.
    Bytes out_;                 ///< Decoded, undrained bytes.
    Bytes scratch_;             ///< Per-chunk decode scratch.
    bool sawIdentifier_ = false;
    Status failed_;
};

/** One-shot framed compression. */
Bytes frameCompress(ByteSpan data);

/**
 * Decodes a framed stream, verifying the stream identifier and every
 * chunk CRC. Returns the reassembled source data; corrupt framing,
 * bad CRCs, or truncated chunks fail with corruptData. Implemented on
 * FrameReader, so whole-buffer and incremental decode agree byte for
 * byte.
 */
Result<Bytes> frameDecompress(ByteSpan framed);

} // namespace cdpu::snappy

#endif // CDPU_SNAPPY_FRAMING_H_
