#include "snappy/framing.h"

#include "common/crc32c.h"
#include "snappy/decompress.h"

namespace cdpu::snappy
{

namespace
{

const char kStreamIdentifier[] = "sNaPpY";

void
putChunkHeader(Bytes &out, ChunkType type, std::size_t length)
{
    out.push_back(static_cast<u8>(type));
    out.push_back(static_cast<u8>(length & 0xff));
    out.push_back(static_cast<u8>((length >> 8) & 0xff));
    out.push_back(static_cast<u8>((length >> 16) & 0xff));
}

void
putLe32(Bytes &out, u32 value)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<u8>(value >> (8 * i)));
}

u32
getLe32(ByteSpan data, std::size_t pos)
{
    u32 value = 0;
    for (unsigned i = 0; i < 4; ++i)
        value |= static_cast<u32>(data[pos + i]) << (8 * i);
    return value;
}

} // namespace

FrameWriter::FrameWriter()
{
    putChunkHeader(out_, ChunkType::streamIdentifier, 6);
    out_.insert(out_.end(), kStreamIdentifier, kStreamIdentifier + 6);
}

void
FrameWriter::write(ByteSpan data)
{
    std::size_t pos = 0;
    while (pos < data.size()) {
        std::size_t take = std::min(kMaxChunkPayload - pending_.size(),
                                    data.size() - pos);
        pending_.insert(pending_.end(), data.begin() + pos,
                        data.begin() + pos + take);
        pos += take;
        if (pending_.size() == kMaxChunkPayload) {
            emitChunk(pending_);
            pending_.clear();
        }
    }
}

void
FrameWriter::emitChunk(ByteSpan payload)
{
    u32 masked = maskCrc(crc32c(payload));
    Bytes compressed = compress(payload, config_);
    if (compressed.size() < payload.size()) {
        putChunkHeader(out_, ChunkType::compressedData,
                       4 + compressed.size());
        putLe32(out_, masked);
        out_.insert(out_.end(), compressed.begin(), compressed.end());
    } else {
        putChunkHeader(out_, ChunkType::uncompressedData,
                       4 + payload.size());
        putLe32(out_, masked);
        out_.insert(out_.end(), payload.begin(), payload.end());
    }
}

std::size_t
FrameWriter::drainInto(Bytes &out)
{
    std::size_t appended = out_.size();
    out.insert(out.end(), out_.begin(), out_.end());
    out_.clear();
    return appended;
}

void
FrameWriter::finishInto(Bytes &out)
{
    if (!pending_.empty()) {
        emitChunk(pending_);
        pending_.clear();
    }
    out.insert(out.end(), out_.begin(), out_.end());
    out_.clear();
    putChunkHeader(out_, ChunkType::streamIdentifier, 6);
    out_.insert(out_.end(), kStreamIdentifier, kStreamIdentifier + 6);
}

Bytes
FrameWriter::finish()
{
    Bytes result;
    finishInto(result);
    return result;
}

Status
FrameReader::processChunk(u8 type_byte, ByteSpan body)
{
    if (type_byte == static_cast<u8>(ChunkType::streamIdentifier)) {
        if (body.size() != 6 ||
            !std::equal(body.begin(), body.end(), kStreamIdentifier)) {
            return Status::corrupt("bad stream identifier");
        }
        sawIdentifier_ = true;
        return Status::okStatus();
    }
    if (!sawIdentifier_)
        return Status::corrupt("data before stream identifier");

    switch (type_byte) {
      case static_cast<u8>(ChunkType::compressedData): {
        // The CRC field alone needs 4 bytes; a lying chunk-length
        // header must not let getLe32 read past the body.
        if (body.size() < 4)
            return Status::corrupt("compressed chunk too short");
        // Bound the chunk before decoding it: the 24-bit chunk length
        // admits bodies far larger than any 64 KiB payload can
        // compress to, and the claimed uncompressed length is checked
        // up front so an oversized claim cannot size the scratch
        // buffer first.
        if (body.size() > 4 + maxCompressedSize(kMaxChunkPayload))
            return Status::corrupt("chunk exceeds 64 KiB limit");
        auto claimed = uncompressedLength(body.subspan(4));
        if (!claimed.ok())
            return claimed.status();
        if (claimed.value() > kMaxChunkPayload)
            return Status::corrupt("chunk exceeds 64 KiB limit");
        u32 expected = unmaskCrc(getLe32(body, 0));
        CDPU_RETURN_IF_ERROR(decompressInto(body.subspan(4), scratch_));
        if (scratch_.size() > kMaxChunkPayload)
            return Status::corrupt("chunk exceeds 64 KiB limit");
        if (crc32c(scratch_) != expected)
            return Status::corrupt("chunk CRC mismatch");
        out_.insert(out_.end(), scratch_.begin(), scratch_.end());
        break;
      }
      case static_cast<u8>(ChunkType::uncompressedData): {
        if (body.size() < 4)
            return Status::corrupt("uncompressed chunk too short");
        ByteSpan payload = body.subspan(4);
        if (payload.size() > kMaxChunkPayload)
            return Status::corrupt("chunk exceeds 64 KiB limit");
        if (crc32c(payload) != unmaskCrc(getLe32(body, 0)))
            return Status::corrupt("chunk CRC mismatch");
        out_.insert(out_.end(), payload.begin(), payload.end());
        break;
      }
      default:
        // Spec: 0x02-0x7f are unskippable, 0x80-0xfd and padding
        // are skippable.
        if (type_byte >= 0x02 && type_byte <= 0x7f)
            return Status::corrupt("unskippable unknown chunk");
        break; // skip
    }
    return Status::okStatus();
}

Status
FrameReader::feed(ByteSpan data)
{
    if (!failed_.ok())
        return failed_;
    buffer_.insert(buffer_.end(), data.begin(), data.end());

    // Decode every chunk whose header and body are both complete.
    while (cursor_ + 4 <= buffer_.size()) {
        std::size_t length =
            buffer_[cursor_ + 1] |
            (static_cast<std::size_t>(buffer_[cursor_ + 2]) << 8) |
            (static_cast<std::size_t>(buffer_[cursor_ + 3]) << 16);
        if (cursor_ + 4 + length > buffer_.size())
            break; // Body incomplete; wait for more bytes.
        u8 type_byte = buffer_[cursor_];
        ByteSpan body(buffer_.data() + cursor_ + 4, length);
        failed_ = processChunk(type_byte, body);
        if (!failed_.ok())
            return failed_;
        cursor_ += 4 + length;
    }

    // Compact the consumed prefix once it dominates the buffer, so a
    // long stream decodes over bounded scratch.
    if (cursor_ > 64 * kKiB && cursor_ > buffer_.size() / 2) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<std::ptrdiff_t>(cursor_));
        cursor_ = 0;
    }
    return Status::okStatus();
}

Status
FrameReader::finish()
{
    if (!failed_.ok())
        return failed_;
    // A partial trailing chunk is a truncated stream: report the
    // corruption instead of a short success.
    if (cursor_ != buffer_.size()) {
        failed_ = cursor_ + 4 > buffer_.size()
                      ? Status::corrupt("framing chunk header truncated")
                      : Status::corrupt("framing chunk body truncated");
        return failed_;
    }
    if (!sawIdentifier_) {
        failed_ = Status::corrupt("missing stream identifier");
        return failed_;
    }
    return Status::okStatus();
}

std::size_t
FrameReader::drainInto(Bytes &out)
{
    std::size_t appended = out_.size();
    out.insert(out.end(), out_.begin(), out_.end());
    out_.clear();
    return appended;
}

Bytes
frameCompress(ByteSpan data)
{
    FrameWriter writer;
    writer.write(data);
    return writer.finish();
}

Result<Bytes>
frameDecompress(ByteSpan framed)
{
    FrameReader reader;
    CDPU_RETURN_IF_ERROR(reader.feed(framed));
    CDPU_RETURN_IF_ERROR(reader.finish());
    Bytes out;
    reader.drainInto(out);
    return out;
}

} // namespace cdpu::snappy
