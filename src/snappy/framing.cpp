#include "snappy/framing.h"

#include "common/crc32c.h"
#include "snappy/decompress.h"

namespace cdpu::snappy
{

namespace
{

const char kStreamIdentifier[] = "sNaPpY";

void
putChunkHeader(Bytes &out, ChunkType type, std::size_t length)
{
    out.push_back(static_cast<u8>(type));
    out.push_back(static_cast<u8>(length & 0xff));
    out.push_back(static_cast<u8>((length >> 8) & 0xff));
    out.push_back(static_cast<u8>((length >> 16) & 0xff));
}

void
putLe32(Bytes &out, u32 value)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<u8>(value >> (8 * i)));
}

u32
getLe32(ByteSpan data, std::size_t pos)
{
    u32 value = 0;
    for (unsigned i = 0; i < 4; ++i)
        value |= static_cast<u32>(data[pos + i]) << (8 * i);
    return value;
}

} // namespace

FrameWriter::FrameWriter()
{
    putChunkHeader(out_, ChunkType::streamIdentifier, 6);
    out_.insert(out_.end(), kStreamIdentifier, kStreamIdentifier + 6);
}

void
FrameWriter::write(ByteSpan data)
{
    std::size_t pos = 0;
    while (pos < data.size()) {
        std::size_t take = std::min(kMaxChunkPayload - pending_.size(),
                                    data.size() - pos);
        pending_.insert(pending_.end(), data.begin() + pos,
                        data.begin() + pos + take);
        pos += take;
        if (pending_.size() == kMaxChunkPayload) {
            emitChunk(pending_);
            pending_.clear();
        }
    }
}

void
FrameWriter::emitChunk(ByteSpan payload)
{
    u32 masked = maskCrc(crc32c(payload));
    Bytes compressed = compress(payload, config_);
    if (compressed.size() < payload.size()) {
        putChunkHeader(out_, ChunkType::compressedData,
                       4 + compressed.size());
        putLe32(out_, masked);
        out_.insert(out_.end(), compressed.begin(), compressed.end());
    } else {
        putChunkHeader(out_, ChunkType::uncompressedData,
                       4 + payload.size());
        putLe32(out_, masked);
        out_.insert(out_.end(), payload.begin(), payload.end());
    }
}

Bytes
FrameWriter::finish()
{
    if (!pending_.empty()) {
        emitChunk(pending_);
        pending_.clear();
    }
    Bytes result = std::move(out_);
    out_.clear();
    putChunkHeader(out_, ChunkType::streamIdentifier, 6);
    out_.insert(out_.end(), kStreamIdentifier, kStreamIdentifier + 6);
    return result;
}

Bytes
frameCompress(ByteSpan data)
{
    FrameWriter writer;
    writer.write(data);
    return writer.finish();
}

Result<Bytes>
frameDecompress(ByteSpan framed)
{
    std::size_t pos = 0;
    Bytes out;
    bool saw_identifier = false;

    while (pos < framed.size()) {
        if (pos + 4 > framed.size())
            return Status::corrupt("framing chunk header truncated");
        u8 type_byte = framed[pos];
        std::size_t length = framed[pos + 1] |
                             (static_cast<std::size_t>(framed[pos + 2])
                              << 8) |
                             (static_cast<std::size_t>(framed[pos + 3])
                              << 16);
        pos += 4;
        if (pos + length > framed.size())
            return Status::corrupt("framing chunk body truncated");
        ByteSpan body = framed.subspan(pos, length);
        pos += length;

        if (type_byte ==
            static_cast<u8>(ChunkType::streamIdentifier)) {
            if (length != 6 ||
                !std::equal(body.begin(), body.end(),
                            kStreamIdentifier)) {
                return Status::corrupt("bad stream identifier");
            }
            saw_identifier = true;
            continue;
        }
        if (!saw_identifier)
            return Status::corrupt("data before stream identifier");

        switch (type_byte) {
          case static_cast<u8>(ChunkType::compressedData): {
            if (length < 4)
                return Status::corrupt("compressed chunk too short");
            u32 expected = unmaskCrc(getLe32(body, 0));
            auto payload = decompress(body.subspan(4));
            if (!payload.ok())
                return payload.status();
            if (payload.value().size() > kMaxChunkPayload)
                return Status::corrupt("chunk exceeds 64 KiB limit");
            if (crc32c(payload.value()) != expected)
                return Status::corrupt("chunk CRC mismatch");
            out.insert(out.end(), payload.value().begin(),
                       payload.value().end());
            break;
          }
          case static_cast<u8>(ChunkType::uncompressedData): {
            if (length < 4)
                return Status::corrupt("uncompressed chunk too short");
            ByteSpan payload = body.subspan(4);
            if (payload.size() > kMaxChunkPayload)
                return Status::corrupt("chunk exceeds 64 KiB limit");
            if (crc32c(payload) != unmaskCrc(getLe32(body, 0)))
                return Status::corrupt("chunk CRC mismatch");
            out.insert(out.end(), payload.begin(), payload.end());
            break;
          }
          default:
            // Spec: 0x02-0x7f are unskippable, 0x80-0xfd and padding
            // are skippable.
            if (type_byte >= 0x02 && type_byte <= 0x7f)
                return Status::corrupt("unskippable unknown chunk");
            break; // skip
        }
    }
    if (!saw_identifier)
        return Status::corrupt("missing stream identifier");
    return out;
}

} // namespace cdpu::snappy
