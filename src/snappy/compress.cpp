#include "snappy/compress.h"

#include <algorithm>
#include <cassert>

#include "common/varint.h"

namespace cdpu::snappy
{

namespace
{

void
emitLiteral(Bytes &out, ByteSpan input, std::size_t start, u32 length)
{
    if (length == 0)
        return;
    u32 n = length - 1;
    if (n < kMaxInlineLiteral) {
        out.push_back(static_cast<u8>(n << 2));
    } else {
        unsigned extra_bytes = 1;
        if (n >= (1u << 8))
            extra_bytes = n >= (1u << 16) ? (n >= (1u << 24) ? 4 : 3) : 2;
        out.push_back(static_cast<u8>((kMaxInlineLiteral - 1 + extra_bytes)
                                      << 2));
        for (unsigned i = 0; i < extra_bytes; ++i)
            out.push_back(static_cast<u8>(n >> (8 * i)));
    }
    out.insert(out.end(), input.begin() + start,
               input.begin() + start + length);
}

/** Emits one copy of length in [4, 64]; picks the cheapest encoding. */
void
emitCopyUpTo64(Bytes &out, u32 offset, u32 length)
{
    assert(length >= 4 && length <= 64);
    assert(offset >= 1);
    if (length <= 11 && offset < 2048) {
        out.push_back(static_cast<u8>(
            (static_cast<u8>(ElementType::copy1)) |
            ((length - 4) << 2) | ((offset >> 8) << 5)));
        out.push_back(static_cast<u8>(offset & 0xff));
    } else if (offset < (1u << 16)) {
        out.push_back(static_cast<u8>(
            static_cast<u8>(ElementType::copy2) | ((length - 1) << 2)));
        out.push_back(static_cast<u8>(offset & 0xff));
        out.push_back(static_cast<u8>(offset >> 8));
    } else {
        out.push_back(static_cast<u8>(
            static_cast<u8>(ElementType::copy4) | ((length - 1) << 2)));
        for (unsigned i = 0; i < 4; ++i)
            out.push_back(static_cast<u8>(offset >> (8 * i)));
    }
}

/** Splits an arbitrary-length copy into legal <= 64-byte elements. */
void
emitCopy(Bytes &out, u32 offset, u32 length)
{
    // Emit 64-byte chunks while more than 68 remain so the tail is
    // always a legal length >= 4 (the stock encoder's strategy).
    while (length >= 68) {
        emitCopyUpTo64(out, offset, 64);
        length -= 64;
    }
    if (length > 64) {
        emitCopyUpTo64(out, offset, 60);
        length -= 60;
    }
    emitCopyUpTo64(out, offset, length);
}

} // namespace

std::size_t
maxCompressedSize(std::size_t input_size)
{
    // Preamble + worst case 6/5 literal expansion (matches stock snappy).
    return 32 + input_size + input_size / 6;
}

void
compressInto(ByteSpan input, Bytes &out,
             const CompressorConfig &config,
             lz77::MatchFinderStats *stats_out)
{
    out.clear();
    out.reserve(std::min<std::size_t>(maxCompressedSize(input.size()),
                                      input.size() + 64));
    putVarint(out, input.size());

    lz77::MatchFinderConfig mf_config;
    mf_config.hashTable = config.hashTable;
    mf_config.windowSize = std::min(config.windowSize, kBlockSize);
    mf_config.minMatchLength = 4;
    mf_config.skipAcceleration = config.skipAcceleration;
    lz77::MatchFinder finder(mf_config);

    lz77::MatchFinderStats total_stats;

    // Snappy compresses independent 64 KiB fragments.
    for (std::size_t base = 0; base < input.size(); base += kBlockSize) {
        std::size_t block_len = std::min(kBlockSize, input.size() - base);
        ByteSpan block = input.subspan(base, block_len);

        lz77::MatchFinderStats stats;
        lz77::Parse parse = finder.parse(block, &stats);
        total_stats.positionsHashed += stats.positionsHashed;
        total_stats.candidateProbes += stats.candidateProbes;
        total_stats.matchesEmitted += stats.matchesEmitted;
        total_stats.matchBytes += stats.matchBytes;
        total_stats.literalBytes += stats.literalBytes;

        std::size_t cursor = 0;
        for (const auto &seq : parse.sequences) {
            emitLiteral(out, block, cursor, seq.literalLength);
            cursor += seq.literalLength;
            emitCopy(out, seq.offset, seq.matchLength);
            cursor += seq.matchLength;
        }
        emitLiteral(out, block, parse.literalTailStart,
                    static_cast<u32>(block_len - parse.literalTailStart));
    }

    if (stats_out)
        *stats_out = total_stats;
}

Bytes
compress(ByteSpan input, const CompressorConfig &config,
         lz77::MatchFinderStats *stats_out)
{
    Bytes out;
    compressInto(input, out, config, stats_out);
    return out;
}

} // namespace cdpu::snappy
