/**
 * @file
 * Snappy compressor built on the shared LZ77 match finder.
 */

#ifndef CDPU_SNAPPY_COMPRESS_H_
#define CDPU_SNAPPY_COMPRESS_H_

#include "lz77/match_finder.h"
#include "snappy/format.h"

namespace cdpu::snappy
{

/**
 * Compressor tuning knobs.
 *
 * Defaults replicate the stock software library (2^14-entry direct-mapped
 * multiplicative hash, 64 KiB window, skip acceleration on). The CDPU
 * compression model reuses this compressor with hardware parameters
 * (windows below 64 KiB, different hash geometry, no skip acceleration)
 * so Figure 12/13's ratio-vs-SW series is measured on identical input.
 */
struct CompressorConfig
{
    lz77::HashTableConfig hashTable{
        .log2Entries = 14,
        .ways = 1,
        .hashFunction = lz77::HashFunction::multiplicative,
        .minMatch = 4,
    };
    std::size_t windowSize = kBlockSize;
    bool skipAcceleration = true;

    /** Collected from the last compress() call. */
};

/** Compresses @p input into a self-contained Snappy buffer. */
Bytes compress(ByteSpan input, const CompressorConfig &config = {},
               lz77::MatchFinderStats *stats = nullptr);

/**
 * Context-reuse variant of compress(): emits into @p out, clearing it
 * first but keeping its capacity, so repeated calls through one
 * scratch buffer stop allocating once the buffer has grown to the
 * workload's largest call.
 */
void compressInto(ByteSpan input, Bytes &out,
                  const CompressorConfig &config = {},
                  lz77::MatchFinderStats *stats = nullptr);

/** Upper bound on compress() output size for @p input_size bytes. */
std::size_t maxCompressedSize(std::size_t input_size);

} // namespace cdpu::snappy

#endif // CDPU_SNAPPY_COMPRESS_H_
