/**
 * @file
 * Snappy decompressor with full corruption checking.
 */

#ifndef CDPU_SNAPPY_DECOMPRESS_H_
#define CDPU_SNAPPY_DECOMPRESS_H_

#include "snappy/format.h"

namespace cdpu::snappy
{

/** Returns the uncompressed length claimed by @p data's preamble. */
Result<u64> uncompressedLength(ByteSpan data);

/**
 * Decompresses a buffer produced by compress().
 *
 * Single-pass software fast path: validates and emits in one walk over
 * the tag stream into a pre-sized output buffer, using word-wide
 * literal and match copies (common/mem.h). Corrupt input (bad varint,
 * out-of-range offsets, truncated literals, or length mismatch) yields
 * a corruptData status; the function never reads outside @p data and
 * its output is byte-identical to the decodeElements()/applyElements()
 * reference path.
 */
Result<Bytes> decompress(ByteSpan data);

/**
 * Context-reuse variant of decompress(): decodes into @p out, clearing
 * it first but keeping its capacity, so a serving loop that replays
 * many calls through one scratch buffer allocates only when a call
 * outgrows every previous one. On error @p out is left in an
 * unspecified (but valid) state.
 */
Status decompressInto(ByteSpan data, Bytes &out);

/**
 * Applies a decoded element stream to produce output. This is the
 * element-granular reference path, retained for the CDPU decompressor
 * model, which replays the same elements through its history-SRAM
 * cycle model (the software fast path is decompress() above).
 */
Status applyElements(ByteSpan data, const std::vector<Element> &elements,
                     u64 expected_size, Bytes &out);

} // namespace cdpu::snappy

#endif // CDPU_SNAPPY_DECOMPRESS_H_
