/**
 * @file
 * Figure/table emitters for the design-space exploration: each
 * function reproduces one evaluation figure of the paper as an ASCII
 * table over the canonical sweeps (history SRAM {64K..2K} x placement,
 * plus the hash-table and speculation sweeps).
 */

#ifndef CDPU_DSE_FIGURE_TABLES_H_
#define CDPU_DSE_FIGURE_TABLES_H_

#include <string>

#include "dse/sweep_runner.h"

namespace cdpu::dse
{

/** The history-SRAM sweep of Figures 11/12/13/14/15. */
std::vector<std::size_t> sramSweepBytes();

/** Figure 11: Snappy decompression speedup/area across placements and
 *  history SRAM sizes. @p suite must be the Snappy-decompress suite. */
std::string figure11(SweepRunner &runner);

/** Figure 12: Snappy compression speedup/ratio/area (2^14 hash). */
std::string figure12(SweepRunner &runner);

/** Figure 13: Snappy compression with 2^9 hash-table entries. */
std::string figure13(SweepRunner &runner);

/** Figure 14 + Section 6.4: ZStd decompression sweep, including the
 *  4/16/32 speculation design points at 64K history. */
std::string figure14(SweepRunner &runner);

/** Figure 15: ZStd compression sweep (2^14 hash). */
std::string figure15(SweepRunner &runner);

/** A single flagship design point (used by the summary bench). */
DsePoint flagshipPoint(SweepRunner &runner);

} // namespace cdpu::dse

#endif // CDPU_DSE_FIGURE_TABLES_H_
