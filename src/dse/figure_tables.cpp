#include "dse/figure_tables.h"

#include <sstream>

#include "common/table.h"

namespace cdpu::dse
{

std::vector<std::size_t>
sramSweepBytes()
{
    return {64 * kKiB, 32 * kKiB, 16 * kKiB, 8 * kKiB, 4 * kKiB,
            2 * kKiB};
}

namespace
{

/** Runs the placement x SRAM grid and renders the figure table. */
std::string
placementSramTable(SweepRunner &runner,
                   const std::vector<sim::Placement> &placements,
                   const hw::CdpuConfig &base, bool with_ratio,
                   double full_area)
{
    std::vector<std::string> header = {"SRAM"};
    for (sim::Placement placement : placements)
        header.push_back(sim::placementName(placement));
    header.push_back("Area/Full");
    if (with_ratio)
        header.push_back("Ratio vs SW");

    TablePrinter table(std::move(header));
    for (std::size_t sram : sramSweepBytes()) {
        hw::CdpuConfig config = base;
        config.historySramBytes = sram;

        std::vector<std::string> row = {TablePrinter::bytes(sram)};
        DsePoint last;
        double area = 0;
        for (sim::Placement placement : placements) {
            config.placement = placement;
            last = runner.run(config);
            area = last.areaMm2;
            row.push_back(TablePrinter::num(last.speedup(), 2) + "x");
        }
        row.push_back(TablePrinter::num(area / full_area, 3));
        if (with_ratio)
            row.push_back(TablePrinter::num(last.ratioVsSw(), 3));
        table.addRow(std::move(row));
    }
    return table.render();
}

} // namespace

std::string
figure11(SweepRunner &runner)
{
    hw::CdpuConfig base;
    double full_area = hw::snappyDecompressorAreaMm2(base);
    std::ostringstream out;
    out << "Figure 11: Snappy decompression speedup vs Xeon "
           "(HyperCompressBench)\n";
    out << "Area normalized to the 64K-history accelerator ("
        << TablePrinter::num(full_area, 3) << " mm^2 in 16nm)\n";
    out << placementSramTable(runner, sim::allPlacements(), base,
                              /*with_ratio=*/false, full_area);
    return out.str();
}

std::string
figure12(SweepRunner &runner)
{
    hw::CdpuConfig base; // 2^14 hash entries
    double full_area = hw::snappyCompressorAreaMm2(base);
    std::ostringstream out;
    out << "Figure 12: Snappy compression speedup/ratio/area "
           "(2^14 hash entries)\n";
    out << "Area normalized to the 64K14HT accelerator ("
        << TablePrinter::num(full_area, 3) << " mm^2 in 16nm)\n";
    out << placementSramTable(
        runner,
        {sim::Placement::rocc, sim::Placement::chiplet,
         sim::Placement::pcieNoCache},
        base, /*with_ratio=*/true, full_area);
    return out.str();
}

std::string
figure13(SweepRunner &runner)
{
    hw::CdpuConfig base;
    base.hashTable.log2Entries = 9;
    // Normalized against the full-size (2^14) design, as the paper does.
    hw::CdpuConfig full;
    double full_area = hw::snappyCompressorAreaMm2(full);
    std::ostringstream out;
    out << "Figure 13: Snappy compression with 2^9 hash-table entries\n";
    out << "Area normalized to the 64K14HT accelerator ("
        << TablePrinter::num(full_area, 3) << " mm^2 in 16nm)\n";
    out << placementSramTable(
        runner,
        {sim::Placement::rocc, sim::Placement::chiplet,
         sim::Placement::pcieNoCache},
        base, /*with_ratio=*/true, full_area);
    return out.str();
}

std::string
figure14(SweepRunner &runner)
{
    hw::CdpuConfig base; // 16 speculations
    double full_area = hw::zstdDecompressorAreaMm2(base);
    std::ostringstream out;
    out << "Figure 14: ZStd decompression speedup vs Xeon "
           "(16 speculations)\n";
    out << "Area normalized to the 64K-history accelerator ("
        << TablePrinter::num(full_area, 3) << " mm^2 in 16nm)\n";
    out << placementSramTable(runner, sim::allPlacements(), base,
                              /*with_ratio=*/false, full_area);

    // Section 6.4: Huffman speculation sweep at 64K history, RoCC.
    out << "\nSection 6.4: speculation sweep (RoCC, 64K history)\n";
    TablePrinter spec_table(
        {"Speculations", "Speedup", "Area mm^2", "Area vs spec16"});
    for (unsigned spec : {4u, 16u, 32u}) {
        hw::CdpuConfig config;
        config.huffSpeculations = spec;
        DsePoint point = runner.run(config);
        spec_table.addRow(
            {std::to_string(spec),
             TablePrinter::num(point.speedup(), 2) + "x",
             TablePrinter::num(point.areaMm2, 2),
             TablePrinter::num(point.areaMm2 / full_area, 3)});
    }
    out << spec_table.render();
    return out.str();
}

std::string
figure15(SweepRunner &runner)
{
    hw::CdpuConfig base;
    double full_area = hw::zstdCompressorAreaMm2(base);
    std::ostringstream out;
    out << "Figure 15: ZStd compression speedup/ratio/area "
           "(2^14 hash entries)\n";
    out << "Area normalized to the 64K14HT accelerator ("
        << TablePrinter::num(full_area, 3) << " mm^2 in 16nm)\n";
    out << placementSramTable(runner, sim::allPlacements(), base,
                              /*with_ratio=*/true, full_area);
    return out.str();
}

DsePoint
flagshipPoint(SweepRunner &runner)
{
    return runner.run(hw::CdpuConfig{});
}

} // namespace cdpu::dse
