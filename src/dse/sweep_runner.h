/**
 * @file
 * Design-space-exploration runner (Section 6): executes one
 * HyperCompressBench suite through a CDPU configuration and the Xeon
 * baseline model, producing the speedup/ratio/area points behind
 * Figures 11-15.
 *
 * A suite's aggregate metric is the total time to process every file
 * (Section 6.1); speedup is Xeon total over accelerator total.
 */

#ifndef CDPU_DSE_SWEEP_RUNNER_H_
#define CDPU_DSE_SWEEP_RUNNER_H_

#include "baseline/xeon_cost_model.h"
#include "cdpu/area_model.h"
#include "cdpu/snappy_pu.h"
#include "cdpu/zstd_pu.h"
#include "hyperbench/suite_generator.h"

namespace cdpu::dse
{

/** One evaluated design point. */
struct DsePoint
{
    hw::CdpuConfig config;
    double accelSeconds = 0;
    double xeonSeconds = 0;
    double areaMm2 = 0;
    u64 historyFallbacks = 0;
    /** Total accelerator cycles across the suite. */
    u64 accelCycles = 0;
    /** Cumulative PU counters across the suite (mem/tlb/pu/link). */
    obs::CounterSnapshot counters;

    /** Compression ratios (compression sweeps only; 0 otherwise). */
    double hwRatio = 0;
    double swRatio = 0;

    double
    speedup() const
    {
        return accelSeconds > 0 ? xeonSeconds / accelSeconds : 0.0;
    }

    double
    accelGBps(std::size_t total_bytes) const
    {
        return accelSeconds > 0
                   ? static_cast<double>(total_bytes) /
                         (accelSeconds * 1e9)
                   : 0.0;
    }

    /** HW ratio relative to the software library (Figures 12/13/15). */
    double
    ratioVsSw() const
    {
        return swRatio > 0 ? hwRatio / swRatio : 0.0;
    }
};

/**
 * Runs CDPU configurations against one suite.
 *
 * Construction performs the per-file preprocessing that is
 * configuration-independent exactly once: decompression suites are
 * compressed with the software library (producing the accelerator's
 * inputs and the ZStd decode traces); compression suites compute the
 * software-reference compressed sizes.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(const hcb::Suite &suite);

    /** Evaluates one configuration over the whole suite. */
    DsePoint run(const hw::CdpuConfig &config);

    /** Total uncompressed bytes in the suite. */
    std::size_t totalBytes() const { return totalBytes_; }

    /** Aggregate software compression ratio of the suite. */
    double softwareRatio() const;

  private:
    DsePoint runSnappyDecompress(const hw::CdpuConfig &config);
    DsePoint runSnappyCompress(const hw::CdpuConfig &config);
    DsePoint runZstdDecompress(const hw::CdpuConfig &config);
    DsePoint runZstdCompress(const hw::CdpuConfig &config);

    const hcb::Suite *suite_;
    baseline::XeonCostModel xeon_;
    std::size_t totalBytes_ = 0;
    std::size_t totalSwCompressed_ = 0;

    /** Decompression suites: per-file compressed input. */
    std::vector<Bytes> compressedInputs_;
    /** ZStd decompression: per-file decode trace. */
    std::vector<zstdlite::FileTrace> traces_;
};

} // namespace cdpu::dse

#endif // CDPU_DSE_SWEEP_RUNNER_H_
