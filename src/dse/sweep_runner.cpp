#include "dse/sweep_runner.h"

#include <cassert>

#include "codec/registry.h"
#include "zstdlite/compress.h"
#include "zstdlite/decompress.h"

namespace cdpu::dse
{

using codec::CodecId;
using Direction = codec::Direction;

SweepRunner::SweepRunner(const hcb::Suite &suite) : suite_(&suite)
{
    for (const auto &file : suite.files) {
        totalBytes_ += file.data.size();

        // The registry's whole-buffer entry point is the software
        // reference for every codec; ZStd additionally records the
        // decode trace its PU model replays.
        const codec::CodecVTable &vtable = codec::registry(suite.codec);
        const codec::CodecParams params =
            vtable.caps.clamp(file.level, file.windowLog);
        Bytes compressed;
        Status status =
            vtable.compressInto(file.data, params, compressed);
        assert(status.ok());
        (void)status;

        if (suite.direction == Direction::decompress) {
            // Software-compress once: this is the accelerator input.
            compressedInputs_.push_back(std::move(compressed));
            if (suite.codec == CodecId::zstdlite) {
                zstdlite::FileTrace trace;
                auto decoded =
                    zstdlite::decompress(compressedInputs_.back(),
                                         &trace);
                assert(decoded.ok());
                traces_.push_back(std::move(trace));
            }
            totalSwCompressed_ += compressedInputs_.back().size();
        } else {
            // Compression suites: software-reference size for the
            // ratio-vs-SW series.
            totalSwCompressed_ += compressed.size();
        }
    }
}

double
SweepRunner::softwareRatio() const
{
    return totalSwCompressed_ > 0
               ? static_cast<double>(totalBytes_) /
                     static_cast<double>(totalSwCompressed_)
               : 0.0;
}

DsePoint
SweepRunner::run(const hw::CdpuConfig &config)
{
    // PU selection is inherently per-codec: the DSE models Snappy and
    // ZStd processing units (Figures 11-15).
    if (suite_->codec == CodecId::snappy) {
        return suite_->direction == Direction::decompress
                   ? runSnappyDecompress(config)
                   : runSnappyCompress(config);
    }
    assert(suite_->codec == CodecId::zstdlite);
    return suite_->direction == Direction::decompress
               ? runZstdDecompress(config)
               : runZstdCompress(config);
}

DsePoint
SweepRunner::runSnappyDecompress(const hw::CdpuConfig &config)
{
    DsePoint point;
    point.config = config;
    point.areaMm2 = hw::snappyDecompressorAreaMm2(config);

    hw::SnappyDecompressorPU pu(config);
    for (std::size_t i = 0; i < suite_->files.size(); ++i) {
        auto result = pu.run(compressedInputs_[i]);
        assert(result.ok());
        point.accelSeconds += result.value().seconds(config.clockGhz);
        point.accelCycles += result.value().cycles;
        point.historyFallbacks += result.value().historyFallbacks();
        point.xeonSeconds += xeon_.seconds(
            CodecId::snappy, Direction::decompress,
            suite_->files[i].data.size());
    }
    point.counters = pu.counters();
    return point;
}

DsePoint
SweepRunner::runSnappyCompress(const hw::CdpuConfig &config)
{
    DsePoint point;
    point.config = config;
    point.areaMm2 = hw::snappyCompressorAreaMm2(config);

    hw::SnappyCompressorPU pu(config);
    std::size_t hw_compressed = 0;
    for (const auto &file : suite_->files) {
        auto result = pu.run(file.data);
        assert(result.ok());
        point.accelSeconds += result.value().seconds(config.clockGhz);
        point.accelCycles += result.value().cycles;
        hw_compressed += result.value().outputBytes;
        point.xeonSeconds += xeon_.seconds(
            CodecId::snappy, Direction::compress, file.data.size());
    }
    point.counters = pu.counters();
    point.hwRatio = static_cast<double>(totalBytes_) /
                    static_cast<double>(hw_compressed);
    point.swRatio = softwareRatio();
    return point;
}

DsePoint
SweepRunner::runZstdDecompress(const hw::CdpuConfig &config)
{
    DsePoint point;
    point.config = config;
    point.areaMm2 = hw::zstdDecompressorAreaMm2(config);

    hw::ZstdDecompressorPU pu(config);
    for (std::size_t i = 0; i < suite_->files.size(); ++i) {
        hw::PuResult result =
            pu.runFromTrace(traces_[i], compressedInputs_[i].size());
        point.accelSeconds += result.seconds(config.clockGhz);
        point.accelCycles += result.cycles;
        point.historyFallbacks += result.historyFallbacks();
        point.xeonSeconds += xeon_.seconds(
            CodecId::zstdlite, Direction::decompress,
            suite_->files[i].data.size(), suite_->files[i].level);
    }
    point.counters = pu.counters();
    return point;
}

DsePoint
SweepRunner::runZstdCompress(const hw::CdpuConfig &config)
{
    DsePoint point;
    point.config = config;
    point.areaMm2 = hw::zstdCompressorAreaMm2(config);

    hw::ZstdCompressorPU pu(config);
    std::size_t hw_compressed = 0;
    for (const auto &file : suite_->files) {
        auto result = pu.run(file.data);
        assert(result.ok());
        point.accelSeconds += result.value().seconds(config.clockGhz);
        point.accelCycles += result.value().cycles;
        hw_compressed += result.value().outputBytes;
        point.xeonSeconds += xeon_.seconds(CodecId::zstdlite,
                                           Direction::compress,
                                           file.data.size(), file.level);
    }
    point.counters = pu.counters();
    point.hwRatio = static_cast<double>(totalBytes_) /
                    static_cast<double>(hw_compressed);
    point.swRatio = softwareRatio();
    return point;
}

} // namespace cdpu::dse
