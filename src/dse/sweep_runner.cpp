#include "dse/sweep_runner.h"

#include <cassert>

#include "snappy/compress.h"
#include "zstdlite/compress.h"
#include "zstdlite/decompress.h"

namespace cdpu::dse
{

using baseline::Algorithm;
using baseline::Direction;

SweepRunner::SweepRunner(const hcb::Suite &suite) : suite_(&suite)
{
    for (const auto &file : suite.files) {
        totalBytes_ += file.data.size();

        if (suite.direction == Direction::decompress) {
            // Software-compress once: this is the accelerator input.
            if (suite.algorithm == Algorithm::snappy) {
                compressedInputs_.push_back(
                    snappy::compress(file.data));
            } else {
                zstdlite::CompressorConfig config;
                config.level = file.level;
                config.windowLog = file.windowLog;
                auto out = zstdlite::compress(file.data, config);
                assert(out.ok());
                compressedInputs_.push_back(std::move(out).value());
                zstdlite::FileTrace trace;
                auto decoded =
                    zstdlite::decompress(compressedInputs_.back(),
                                         &trace);
                assert(decoded.ok());
                traces_.push_back(std::move(trace));
            }
            totalSwCompressed_ += compressedInputs_.back().size();
        } else {
            // Compression suites: software-reference size for the
            // ratio-vs-SW series.
            if (suite.algorithm == Algorithm::snappy) {
                totalSwCompressed_ +=
                    snappy::compress(file.data).size();
            } else {
                zstdlite::CompressorConfig config;
                config.level = file.level;
                config.windowLog = file.windowLog;
                auto out = zstdlite::compress(file.data, config);
                assert(out.ok());
                totalSwCompressed_ += out.value().size();
            }
        }
    }
}

double
SweepRunner::softwareRatio() const
{
    return totalSwCompressed_ > 0
               ? static_cast<double>(totalBytes_) /
                     static_cast<double>(totalSwCompressed_)
               : 0.0;
}

DsePoint
SweepRunner::run(const hw::CdpuConfig &config)
{
    if (suite_->algorithm == Algorithm::snappy) {
        return suite_->direction == Direction::decompress
                   ? runSnappyDecompress(config)
                   : runSnappyCompress(config);
    }
    return suite_->direction == Direction::decompress
               ? runZstdDecompress(config)
               : runZstdCompress(config);
}

DsePoint
SweepRunner::runSnappyDecompress(const hw::CdpuConfig &config)
{
    DsePoint point;
    point.config = config;
    point.areaMm2 = hw::snappyDecompressorAreaMm2(config);

    hw::SnappyDecompressorPU pu(config);
    for (std::size_t i = 0; i < suite_->files.size(); ++i) {
        auto result = pu.run(compressedInputs_[i]);
        assert(result.ok());
        point.accelSeconds += result.value().seconds(config.clockGhz);
        point.accelCycles += result.value().cycles;
        point.historyFallbacks += result.value().historyFallbacks();
        point.xeonSeconds += xeon_.seconds(
            Algorithm::snappy, Direction::decompress,
            suite_->files[i].data.size());
    }
    point.counters = pu.counters();
    return point;
}

DsePoint
SweepRunner::runSnappyCompress(const hw::CdpuConfig &config)
{
    DsePoint point;
    point.config = config;
    point.areaMm2 = hw::snappyCompressorAreaMm2(config);

    hw::SnappyCompressorPU pu(config);
    std::size_t hw_compressed = 0;
    for (const auto &file : suite_->files) {
        auto result = pu.run(file.data);
        assert(result.ok());
        point.accelSeconds += result.value().seconds(config.clockGhz);
        point.accelCycles += result.value().cycles;
        hw_compressed += result.value().outputBytes;
        point.xeonSeconds += xeon_.seconds(
            Algorithm::snappy, Direction::compress, file.data.size());
    }
    point.counters = pu.counters();
    point.hwRatio = static_cast<double>(totalBytes_) /
                    static_cast<double>(hw_compressed);
    point.swRatio = softwareRatio();
    return point;
}

DsePoint
SweepRunner::runZstdDecompress(const hw::CdpuConfig &config)
{
    DsePoint point;
    point.config = config;
    point.areaMm2 = hw::zstdDecompressorAreaMm2(config);

    hw::ZstdDecompressorPU pu(config);
    for (std::size_t i = 0; i < suite_->files.size(); ++i) {
        hw::PuResult result =
            pu.runFromTrace(traces_[i], compressedInputs_[i].size());
        point.accelSeconds += result.seconds(config.clockGhz);
        point.accelCycles += result.cycles;
        point.historyFallbacks += result.historyFallbacks();
        point.xeonSeconds += xeon_.seconds(
            Algorithm::zstd, Direction::decompress,
            suite_->files[i].data.size(), suite_->files[i].level);
    }
    point.counters = pu.counters();
    return point;
}

DsePoint
SweepRunner::runZstdCompress(const hw::CdpuConfig &config)
{
    DsePoint point;
    point.config = config;
    point.areaMm2 = hw::zstdCompressorAreaMm2(config);

    hw::ZstdCompressorPU pu(config);
    std::size_t hw_compressed = 0;
    for (const auto &file : suite_->files) {
        auto result = pu.run(file.data);
        assert(result.ok());
        point.accelSeconds += result.value().seconds(config.clockGhz);
        point.accelCycles += result.value().cycles;
        hw_compressed += result.value().outputBytes;
        point.xeonSeconds += xeon_.seconds(Algorithm::zstd,
                                           Direction::compress,
                                           file.data.size(), file.level);
    }
    point.counters = pu.counters();
    point.hwRatio = static_cast<double>(totalBytes_) /
                    static_cast<double>(hw_compressed);
    point.swRatio = softwareRatio();
    return point;
}

} // namespace cdpu::dse
