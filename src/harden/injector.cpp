#include "harden/injector.h"

#include <algorithm>

#include "codec/registry.h"
#include "common/rng.h"
#include "container/container.h"
#include "flatelite/format.h"
#include "gipfeli/gipfeli.h"
#include "snappy/framing.h"
#include "zstdlite/format.h"

namespace cdpu::harden
{

const std::vector<MutationClass> &
allMutationClasses()
{
    static const std::vector<MutationClass> kAll = {
        MutationClass::bitFlip,       MutationClass::truncate,
        MutationClass::lengthTamper,  MutationClass::crcTamper,
        MutationClass::chunkTypeSwap, MutationClass::splice,
        MutationClass::stageHeaderTamper,
    };
    return kAll;
}

std::string
mutationClassName(MutationClass cls)
{
    switch (cls) {
      case MutationClass::bitFlip: return "bit_flip";
      case MutationClass::truncate: return "truncate";
      case MutationClass::lengthTamper: return "length_tamper";
      case MutationClass::crcTamper: return "crc_tamper";
      case MutationClass::chunkTypeSwap: return "chunk_type_swap";
      case MutationClass::splice: return "splice";
      case MutationClass::stageHeaderTamper:
        return "stage_header_tamper";
    }
    return "unknown";
}

u64
mutationSeed(const MutationSpec &spec)
{
    // SplitMix64-style finalizer over the packed triple, so adjacent
    // seeds (the driver uses seedBase + i) land far apart in Rng space.
    u64 x = spec.seed;
    x ^= ((static_cast<u64>(spec.codec) & 0xff) << 56) |
         (static_cast<u64>(spec.cls) << 48);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::string
describeSpec(const MutationSpec &spec)
{
    return "codec=" + codec::codecName(spec.codec) +
           " class=" + mutationClassName(spec.cls) +
           " seed=" + std::to_string(spec.seed);
}

namespace
{

/** Skips a varint's bytes (no value decoding); false when the frame
 *  ends mid-varint or the encoding exceeds 10 bytes. */
bool
skipVarint(ByteSpan frame, std::size_t &pos)
{
    for (std::size_t n = 0; n < 10 && pos < frame.size(); ++n) {
        if (!(frame[pos++] & 0x80))
            return true;
    }
    return false;
}

/** Boundaries of a snappy framed stream: every chunk start, each data
 *  chunk's CRC edges and payload start. */
void
snappyStreamOffsets(ByteSpan frame, std::vector<std::size_t> &offsets)
{
    std::size_t pos = 0;
    while (pos + 4 <= frame.size()) {
        offsets.push_back(pos);
        u8 type = frame[pos];
        std::size_t length = frame[pos + 1] |
                             (static_cast<std::size_t>(frame[pos + 2])
                              << 8) |
                             (static_cast<std::size_t>(frame[pos + 3])
                              << 16);
        std::size_t body = pos + 4;
        if (body > frame.size() || length > frame.size() - body)
            break;
        offsets.push_back(body);
        if ((type == static_cast<u8>(snappy::ChunkType::compressedData) ||
             type ==
                 static_cast<u8>(snappy::ChunkType::uncompressedData)) &&
            length >= 4) {
            offsets.push_back(body + 4); // CRC | payload edge.
        }
        pos = body + length;
    }
}

/** Boundaries of the magic/windowLog/contentSize header plus the block
 *  skeleton shared (modulo field widths) by zstdlite and flatelite:
 *  u8 header, varint regenSize, then a type-dependent body. */
void
blockFrameOffsets(ByteSpan frame, std::size_t magic_size,
                  bool zstd_blocks, std::vector<std::size_t> &offsets)
{
    if (frame.size() <= magic_size + 1)
        return;
    offsets.push_back(magic_size);     // magic | windowLog edge.
    offsets.push_back(magic_size + 1); // windowLog | contentSize edge.
    std::size_t pos = magic_size + 1;
    if (!skipVarint(frame, pos))
        return;
    offsets.push_back(pos); // header | first block edge.

    bool last = false;
    while (!last && pos < frame.size()) {
        u8 header = frame[pos++];
        last = header & 1;
        u8 type = (header >> 1) & 3;
        std::size_t regen_start = pos;
        u64 regen = 0;
        {
            std::size_t probe = pos;
            for (unsigned n = 0; n < 10 && probe < frame.size(); ++n) {
                u8 byte = frame[probe++];
                regen |= static_cast<u64>(byte & 0x7f) << (7 * n);
                if (!(byte & 0x80))
                    break;
            }
        }
        if (!skipVarint(frame, pos))
            return;
        offsets.push_back(regen_start);
        offsets.push_back(pos); // regenSize | body edge.
        if (zstd_blocks) {
            // 0 raw / 1 rle / 2 compressed.
            if (type == 0) {
                pos += regen;
            } else if (type == 1) {
                pos += 1;
            } else {
                u64 comp = 0;
                std::size_t probe = pos;
                for (unsigned n = 0; n < 10 && probe < frame.size();
                     ++n) {
                    u8 byte = frame[probe++];
                    comp |= static_cast<u64>(byte & 0x7f) << (7 * n);
                    if (!(byte & 0x80))
                        break;
                }
                if (!skipVarint(frame, pos))
                    return;
                offsets.push_back(pos); // compSize | sections edge.
                pos += comp;
            }
        } else {
            // FlateLite: bit1 selects raw vs compressed; only the raw
            // body is skippable without decoding the bitstream.
            if (!(header & 2))
                pos = pos + regen;
            else
                return;
        }
        if (pos > frame.size())
            return;
        offsets.push_back(pos); // block | next block edge.
    }
}

/** Reads a varint's value and advances @p pos; false when the frame
 *  ends mid-varint. */
bool
probeVarint(ByteSpan frame, std::size_t &pos, u64 &value)
{
    value = 0;
    for (unsigned n = 0; n < 10 && pos < frame.size(); ++n) {
        u8 byte = frame[pos++];
        value |= static_cast<u64>(byte & 0x7f) << (7 * n);
        if (!(byte & 0x80))
            return true;
    }
    return false;
}

/**
 * End of the container's header: magic/version/codec/flags plus, when
 * the codec byte is the pipeline escape, the varint-length spec-name
 * region. Pushes the spec region's interior edges when @p offsets is
 * given; returns frame.size() when the skeleton runs out.
 */
std::size_t
containerHeaderEnd(ByteSpan frame, std::vector<std::size_t> *offsets)
{
    const std::size_t fixed = container::kMagic.size() + 3;
    if (frame.size() < fixed)
        return frame.size();
    std::size_t pos = fixed;
    if (frame[container::kMagic.size() + 1] ==
        container::kPipelineCodecByte) {
        u64 spec_len = 0;
        if (!probeVarint(frame, pos, spec_len))
            return frame.size();
        if (offsets)
            offsets->push_back(pos); // specLen | name edge.
        if (spec_len > frame.size() - pos)
            return frame.size();
        pos += static_cast<std::size_t>(spec_len);
    }
    return pos;
}

/** Skeleton of the block-parallel container (DESIGN.md §14): header
 *  byte edges, each index varint edge, the CRC's both edges, and every
 *  block boundary in the data section. Walks the claimed entry count
 *  but stops wherever the (possibly already-damaged) frame runs out. */
void
containerFrameOffsets(ByteSpan frame, std::vector<std::size_t> &offsets)
{
    const std::size_t fixed = container::kMagic.size() + 3;
    if (frame.size() < fixed)
        return;
    for (std::size_t pos = container::kMagic.size(); pos <= fixed;
         ++pos)
        offsets.push_back(pos); // magic|version|codec|flags edges.
    std::size_t pos = containerHeaderEnd(frame, &offsets);
    if (pos >= frame.size())
        return;
    offsets.push_back(pos); // header | blockCount edge.
    u64 block_count = 0;
    if (!probeVarint(frame, pos, block_count))
        return;
    offsets.push_back(pos); // blockCount | totalRegen edge.
    if (!skipVarint(frame, pos))
        return;
    offsets.push_back(pos); // totalRegen | entries edge.

    std::vector<u64> comp_sizes;
    for (u64 i = 0; i < block_count && pos < frame.size(); ++i) {
        if (!skipVarint(frame, pos)) // offset
            return;
        offsets.push_back(pos);
        u64 comp = 0;
        if (!probeVarint(frame, pos, comp))
            return;
        offsets.push_back(pos);
        if (!skipVarint(frame, pos)) // regenSize
            return;
        offsets.push_back(pos); // entry | next entry edge.
        comp_sizes.push_back(comp);
    }
    if (frame.size() - pos < 4)
        return;
    offsets.push_back(pos + 4); // CRC | data edge.
    const std::size_t data = pos + 4;
    u64 boundary = 0;
    for (u64 comp : comp_sizes) {
        if (comp > frame.size() - data - boundary)
            break;
        boundary += comp;
        offsets.push_back(data + static_cast<std::size_t>(boundary));
    }
}

/** Byte position of the container's 4-byte index CRC, or frame.size()
 *  when the skeleton ends before one. */
std::size_t
containerCrcPos(ByteSpan frame)
{
    std::size_t pos = containerHeaderEnd(frame, nullptr);
    if (pos >= frame.size())
        return frame.size();
    u64 block_count = 0;
    if (!probeVarint(frame, pos, block_count) || !skipVarint(frame, pos))
        return frame.size();
    for (u64 i = 0; i < block_count && pos < frame.size(); ++i) {
        if (!skipVarint(frame, pos) || !skipVarint(frame, pos) ||
            !skipVarint(frame, pos))
            return frame.size();
    }
    return frame.size() - pos >= 4 ? pos : frame.size();
}

/** Index varint ranges of a container frame: blockCount, totalRegen,
 *  and every entry's offset/compSize/regenSize — the fields an
 *  index-offset tamper or regen-size lie rewrites. */
std::vector<std::pair<std::size_t, std::size_t>>
containerLengthRanges(ByteSpan frame)
{
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    std::size_t pos = containerHeaderEnd(frame, nullptr);
    if (pos >= frame.size())
        return ranges;
    u64 block_count = 0;
    {
        std::size_t start = pos;
        if (!probeVarint(frame, pos, block_count))
            return ranges;
        ranges.emplace_back(start, pos - start);
    }
    {
        std::size_t start = pos;
        if (!skipVarint(frame, pos))
            return ranges;
        ranges.emplace_back(start, pos - start);
    }
    for (u64 i = 0; i < block_count && pos < frame.size(); ++i) {
        for (int field = 0; field < 3; ++field) {
            std::size_t start = pos;
            if (!skipVarint(frame, pos))
                return ranges;
            ranges.emplace_back(start, pos - start);
        }
    }
    return ranges;
}

/** Positions of likely length fields under the frame's grammar: the
 *  byte ranges a lengthTamper mutation rewrites. */
std::vector<std::pair<std::size_t, std::size_t>>
lengthFieldRanges(codec::CodecId id, FrameKind kind, ByteSpan frame)
{
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    if (kind == FrameKind::container)
        return containerLengthRanges(frame);
    auto varint_range = [&](std::size_t start) {
        std::size_t pos = start;
        if (skipVarint(frame, pos) && pos > start)
            ranges.emplace_back(start, pos - start);
    };
    // A pipeline's buffer/stream frames are its terminal codec's wire
    // format wrapping staged bytes, so length fields sit where the
    // terminal grammar puts them. Codecs whose sessions share the
    // buffer container (every pipeline) follow the buffer grammar
    // even for stream frames.
    if (kind == FrameKind::stream &&
        codec::registry(id).caps.streamingSharesBufferFormat)
        kind = FrameKind::buffer;
    switch (codec::terminalBase(id)) {
      case codec::BaseCodecId::snappy:
        if (kind == FrameKind::buffer) {
            varint_range(0); // Preamble uncompressed length.
        } else {
            // Every chunk's 24-bit length field.
            std::size_t pos = 0;
            while (pos + 4 <= frame.size()) {
                ranges.emplace_back(pos + 1, 3);
                std::size_t length =
                    frame[pos + 1] |
                    (static_cast<std::size_t>(frame[pos + 2]) << 8) |
                    (static_cast<std::size_t>(frame[pos + 3]) << 16);
                if (length > frame.size() - pos - 4)
                    break;
                pos += 4 + length;
            }
        }
        break;
      case codec::BaseCodecId::zstdlite:
        varint_range(zstdlite::kMagic.size() + 1); // contentSize.
        break;
      case codec::BaseCodecId::flatelite:
        varint_range(flatelite::kMagic.size() + 1);
        break;
      case codec::BaseCodecId::gipfeli:
        varint_range(gipfeli::kMagic.size());
        break;
    }
    // Block/chunk-level varints surface through structuralOffsets; add
    // the varint starting at each interior boundary as a candidate.
    for (std::size_t offset :
         CorruptionInjector::structuralOffsets(id, kind, frame)) {
        if (offset == 0 || offset >= frame.size())
            continue;
        varint_range(offset);
    }
    return ranges;
}

std::size_t
pickOffset(const std::vector<std::size_t> &offsets, Rng &rng)
{
    return offsets[rng.below(offsets.size())];
}

} // namespace

std::vector<std::size_t>
CorruptionInjector::structuralOffsets(codec::CodecId id, FrameKind kind,
                                      ByteSpan frame)
{
    std::vector<std::size_t> offsets = {0, frame.size()};
    if (kind == FrameKind::container) {
        // The container grammar is the same for every inner codec;
        // intra-block offsets are the inner codec's business and the
        // block-level fuzz legs already cover them.
        containerFrameOffsets(frame, offsets);
        std::sort(offsets.begin(), offsets.end());
        offsets.erase(std::unique(offsets.begin(), offsets.end()),
                      offsets.end());
        while (!offsets.empty() && offsets.back() > frame.size())
            offsets.pop_back();
        if (offsets.empty() || offsets.back() != frame.size())
            offsets.push_back(frame.size());
        return offsets;
    }
    // Pipelines wrap staged bytes in their terminal codec's wire
    // format, so the terminal grammar is the one with boundaries;
    // shared-format sessions emit buffer frames even under kind
    // stream.
    if (kind == FrameKind::stream &&
        codec::registry(id).caps.streamingSharesBufferFormat)
        kind = FrameKind::buffer;
    switch (codec::terminalBase(id)) {
      case codec::BaseCodecId::snappy:
        if (kind == FrameKind::buffer) {
            std::size_t pos = 0;
            if (skipVarint(frame, pos))
                offsets.push_back(pos); // Preamble | element edge.
        } else {
            snappyStreamOffsets(frame, offsets);
        }
        break;
      case codec::BaseCodecId::zstdlite:
        blockFrameOffsets(frame, zstdlite::kMagic.size(), true, offsets);
        break;
      case codec::BaseCodecId::flatelite:
        blockFrameOffsets(frame, flatelite::kMagic.size(), false,
                          offsets);
        break;
      case codec::BaseCodecId::gipfeli: {
        // magic | contentSize varint | per-call body (tables + stream).
        std::size_t pos = gipfeli::kMagic.size();
        if (frame.size() > pos) {
            offsets.push_back(pos);
            if (skipVarint(frame, pos))
                offsets.push_back(pos);
        }
        break;
      }
    }
    std::sort(offsets.begin(), offsets.end());
    offsets.erase(std::unique(offsets.begin(), offsets.end()),
                  offsets.end());
    // Clamp anything a damaged skeleton walked past the end.
    while (!offsets.empty() && offsets.back() > frame.size())
        offsets.pop_back();
    if (offsets.empty() || offsets.back() != frame.size())
        offsets.push_back(frame.size());
    return offsets;
}

Bytes
CorruptionInjector::mutate(ByteSpan frame, const MutationSpec &spec,
                           FrameKind kind, ByteSpan donor)
{
    Rng rng(mutationSeed(spec));
    Bytes out(frame.begin(), frame.end());
    if (frame.empty() && spec.cls != MutationClass::splice)
        return out;

    switch (spec.cls) {
      case MutationClass::bitFlip: {
        std::size_t flips = 1 + rng.below(8);
        for (std::size_t i = 0; i < flips; ++i) {
            std::size_t bit = rng.below(out.size() * 8);
            out[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        }
        break;
      }
      case MutationClass::truncate: {
        auto offsets = structuralOffsets(spec.codec, kind, frame);
        std::size_t cut = pickOffset(offsets, rng);
        // Half the time shift by one byte to land mid-field.
        if (rng.chance(0.5)) {
            if (rng.chance(0.5) && cut > 0)
                --cut;
            else if (cut < frame.size())
                ++cut;
        }
        out.resize(cut);
        break;
      }
      case MutationClass::lengthTamper: {
        auto ranges = lengthFieldRanges(spec.codec, kind, frame);
        if (ranges.empty()) {
            out[rng.below(out.size())] = 0xff;
            break;
        }
        auto [start, len] = ranges[rng.below(ranges.size())];
        switch (rng.below(4)) {
          case 0: // Huge: saturate every byte (varints grow, LE
                  // fields max out).
            for (std::size_t i = 0; i < len; ++i)
                out[start + i] = 0xff;
            break;
          case 1: // Zero the field.
            for (std::size_t i = 0; i < len; ++i)
                out[start + i] = 0;
            break;
          case 2: // Off-by-one on the low byte.
            out[start] = static_cast<u8>(out[start] + 1);
            break;
          default: // Random low byte (keeps varint shape half the
                   // time).
            out[start] = static_cast<u8>(rng.next());
            break;
        }
        break;
      }
      case MutationClass::crcTamper: {
        if (kind == FrameKind::container) {
            // Flip a bit inside the index CRC so a byte-perfect index
            // arrives with a wrong checksum (and vice versa the other
            // classes leave the CRC stale over a tampered index).
            std::size_t crc = containerCrcPos(frame);
            if (crc < frame.size()) {
                out[crc + rng.below(4)] ^=
                    static_cast<u8>(1u << rng.below(8));
                break;
            }
        }
        if (spec.codec == codec::CodecId::snappy &&
            kind == FrameKind::stream) {
            // Flip a bit inside a data chunk's masked CRC field.
            std::size_t pos = 0;
            std::vector<std::size_t> crc_fields;
            while (pos + 4 <= frame.size()) {
                u8 type = frame[pos];
                std::size_t length =
                    frame[pos + 1] |
                    (static_cast<std::size_t>(frame[pos + 2]) << 8) |
                    (static_cast<std::size_t>(frame[pos + 3]) << 16);
                if (length > frame.size() - pos - 4)
                    break;
                if ((type == static_cast<u8>(
                                 snappy::ChunkType::compressedData) ||
                     type == static_cast<u8>(
                                 snappy::ChunkType::uncompressedData)) &&
                    length >= 4) {
                    crc_fields.push_back(pos + 4);
                }
                pos += 4 + length;
            }
            if (!crc_fields.empty()) {
                std::size_t field =
                    crc_fields[rng.below(crc_fields.size())];
                out[field + rng.below(4)] ^=
                    static_cast<u8>(1u << rng.below(8));
                break;
            }
        }
        // No integrity field in this grammar: damage the stream tail,
        // where content-size/termination validation must catch it.
        std::size_t tail = out.size() - 1 -
                           rng.below(std::min<std::size_t>(out.size(),
                                                           4));
        out[tail] ^= static_cast<u8>(1u << rng.below(8));
        break;
      }
      case MutationClass::chunkTypeSwap: {
        if (kind == FrameKind::container &&
            frame.size() >= container::kMagic.size() + 3) {
            // The container's discriminators are the version, codec-id,
            // and flags bytes right after the magic.
            static constexpr u8 kDiscriminators[] = {0x00, 0x01, 0x02,
                                                     0x03, 0x7f, 0xff};
            std::size_t byte =
                container::kMagic.size() + rng.below(3);
            out[byte] = kDiscriminators[rng.below(
                std::size(kDiscriminators))];
            break;
        }
        if (spec.codec == codec::CodecId::snappy &&
            kind == FrameKind::stream) {
            // Rewrite a chunk type byte across the spec's interesting
            // ranges: data, reserved-unskippable, skippable, padding,
            // identifier.
            static constexpr u8 kTypes[] = {0x00, 0x01, 0x02, 0x7f,
                                            0x80, 0xfe, 0xff};
            std::size_t pos = 0;
            std::vector<std::size_t> headers;
            while (pos + 4 <= frame.size()) {
                headers.push_back(pos);
                std::size_t length =
                    frame[pos + 1] |
                    (static_cast<std::size_t>(frame[pos + 2]) << 8) |
                    (static_cast<std::size_t>(frame[pos + 3]) << 16);
                if (length > frame.size() - pos - 4)
                    break;
                pos += 4 + length;
            }
            if (!headers.empty()) {
                out[headers[rng.below(headers.size())]] =
                    kTypes[rng.below(std::size(kTypes))];
                break;
            }
        }
        // Block-structured frames keep their discriminator in the
        // low bits of each unit's first byte; elsewhere the first
        // byte after a boundary is the nearest equivalent.
        auto offsets = structuralOffsets(spec.codec, kind, frame);
        std::size_t offset = pickOffset(offsets, rng);
        if (offset >= out.size())
            offset = out.size() - 1;
        out[offset] ^= static_cast<u8>(1 + rng.below(7));
        break;
      }
      case MutationClass::stageHeaderTamper: {
        const codec::CodecCaps &caps = codec::registry(spec.codec).caps;
        if (caps.isPipeline && kind != FrameKind::container) {
            // Pipeline frames are the terminal codec's wire format
            // wrapping stage-framed bytes. Unwrap the terminal layer,
            // damage the leading stage header (tag byte or claimed
            // raw-size varint), and re-wrap — the corruption then
            // survives a clean terminal decode and must be caught by
            // the stage inverter's own validation.
            const codec::CodecVTable &terminal =
                codec::registry(codec::toCodecId(caps.terminal));
            Bytes staged;
            if (terminal.decompressInto(frame, staged).ok() &&
                !staged.empty()) {
                std::size_t byte = rng.below(
                    std::min<std::size_t>(staged.size(), 4));
                switch (rng.below(3)) {
                  case 0:
                    staged[byte] = 0xff;
                    break;
                  case 1:
                    staged[byte] = 0x00;
                    break;
                  default:
                    staged[byte] ^=
                        static_cast<u8>(1 + rng.below(255));
                    break;
                }
                const codec::CodecParams params = terminal.caps.clamp(
                    terminal.caps.defaultLevel,
                    terminal.caps.defaultWindowLog);
                Bytes rewrapped;
                if (terminal.compressInto(staged, params, rewrapped)
                        .ok()) {
                    out = std::move(rewrapped);
                    break;
                }
            }
        }
        // Base codecs (and container frames, whose stage headers live
        // inside blocks): deterministic leading-byte tamper.
        std::size_t byte =
            rng.below(std::min<std::size_t>(out.size(), 8));
        out[byte] ^= static_cast<u8>(1 + rng.below(255));
        break;
      }
      case MutationClass::splice: {
        ByteSpan tail_source = donor.empty() ? frame : donor;
        auto head_offsets =
            structuralOffsets(spec.codec, kind, frame);
        auto tail_offsets =
            structuralOffsets(spec.codec, kind, tail_source);
        std::size_t head = pickOffset(head_offsets, rng);
        std::size_t tail = pickOffset(tail_offsets, rng);
        out.assign(frame.begin(),
                   frame.begin() + static_cast<std::ptrdiff_t>(head));
        out.insert(out.end(),
                   tail_source.begin() +
                       static_cast<std::ptrdiff_t>(tail),
                   tail_source.end());
        break;
      }
    }
    return out;
}

} // namespace cdpu::harden
