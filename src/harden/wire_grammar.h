/**
 * @file
 * Corruption battery for the cdpud wire-request grammar.
 *
 * The daemon's framing layer (serve/wire.h) is the first parser that
 * attacker-controlled bytes meet, before any codec runs — so it gets
 * the same treatment the codec frames get from the corruption
 * injector: every MutationClass reinterpreted against the fixed
 * request layout (bit flips anywhere, truncation at field boundaries,
 * length-field tampering of specLen/payloadLen, magic/trailing-byte
 * tampering, version/direction discriminator swaps, splices of two
 * frames, codec-spec charset tampering), each mutation a pure function
 * of (class, seed) so a failure replays from its report line.
 *
 * The contract checked per mutant:
 *  - parseRequest() never throws, never faults, and classifies every
 *    rejection as dataError;
 *  - an accepted mutant must be *canonical*: re-encoding the parsed
 *    request reproduces the mutant byte-for-byte (the fixed layout
 *    admits exactly one encoding, so acceptance of a non-canonical
 *    frame would mean the parser ignored bytes — a smuggling channel);
 *  - every strict prefix of a valid frame is rejected (a partial
 *    header or body must never parse as a complete request).
 */

#ifndef CDPU_HARDEN_WIRE_GRAMMAR_H_
#define CDPU_HARDEN_WIRE_GRAMMAR_H_

#include <string>
#include <vector>

#include "harden/injector.h"
#include "serve/wire.h"

namespace cdpu::harden
{

/** Field boundaries of a wire request frame: header field edges, the
 *  header/spec edge, the spec/payload edge, and frame.size(). Sorted,
 *  deduplicated, clamped to the frame. */
std::vector<std::size_t> wireStructuralOffsets(ByteSpan frame);

/**
 * Applies @p cls reinterpreted for the wire-request layout to
 * @p frame; deterministic in (@p cls, @p seed, @p frame, @p donor).
 * @p donor feeds the splice class (folded onto @p frame when empty).
 */
Bytes mutateWireRequest(ByteSpan frame, MutationClass cls, u64 seed,
                        ByteSpan donor = {});

struct WireFuzzConfig
{
    u64 iterations = 1000;
    u64 seedBase = 0;
    std::size_t maxPayloadBytes = 4096;
    serve::WireLimits limits;
};

struct WireFuzzFailure
{
    MutationClass cls = MutationClass::bitFlip;
    u64 seed = 0;
    std::string what;
};

struct WireFuzzReport
{
    u64 trials = 0;
    u64 mutantsRejected = 0;
    u64 mutantsAccepted = 0; ///< Parsed and verified canonical.
    u64 prefixesChecked = 0;
    std::vector<WireFuzzFailure> failures;

    bool ok() const { return failures.empty(); }
    std::string summary(const WireFuzzConfig &config) const;
};

/** Runs the battery; deterministic in @p config. */
WireFuzzReport runWireFuzz(const WireFuzzConfig &config);

} // namespace cdpu::harden

#endif // CDPU_HARDEN_WIRE_GRAMMAR_H_
