#include "harden/wire_grammar.h"

#include <algorithm>

#include "common/rng.h"

namespace cdpu::harden
{

using serve::kRequestHeaderBytes;
using serve::WireRequest;

namespace
{

/** Request header field edges (serve/wire.cpp layout). */
constexpr std::size_t kHeaderEdges[] = {0,  4,  5,  6,  8, 16,
                                        24, 28, 32, 40, 44};

u64
wireMutationSeed(MutationClass cls, u64 seed)
{
    // Same mixing idea as injector.cpp's mutationSeed, keyed on the
    // grammar instead of a codec so wire seeds never collide with a
    // codec battery's draw sequence.
    u64 mixed = 0x77697265u; // "wire"
    mixed = mixed * 0x100000001b3ull ^ static_cast<u64>(cls);
    mixed = mixed * 0x100000001b3ull ^ seed;
    return mixed;
}

void
flipBits(Bytes &frame, Rng &rng)
{
    if (frame.empty())
        return;
    const u64 flips = rng.range(1, 8);
    for (u64 i = 0; i < flips; ++i) {
        const std::size_t byte = rng.below(frame.size());
        frame[byte] ^= static_cast<u8>(1u << rng.below(8));
    }
}

void
truncateAtBoundary(Bytes &frame, Rng &rng)
{
    auto offsets = wireStructuralOffsets(
        ByteSpan(frame.data(), frame.size()));
    std::size_t cut = offsets[rng.below(offsets.size())];
    // ±1 wobble: off-by-one cuts catch parsers that accept a frame
    // one byte short of a declared field.
    if (rng.chance(0.5)) {
        const u64 wobble = rng.below(3);
        if (wobble == 1 && cut > 0)
            --cut;
        else if (wobble == 2 && cut < frame.size())
            ++cut;
    }
    frame.resize(cut);
}

void
putWireU16(Bytes &frame, std::size_t pos, u16 value)
{
    frame[pos] = static_cast<u8>(value & 0xff);
    frame[pos + 1] = static_cast<u8>(value >> 8);
}

void
putWireU32(Bytes &frame, std::size_t pos, u32 value)
{
    for (int shift = 0; shift < 32; shift += 8)
        frame[pos + static_cast<std::size_t>(shift / 8)] =
            static_cast<u8>(value >> shift);
}

void
tamperLengths(Bytes &frame, Rng &rng)
{
    if (frame.size() < kRequestHeaderBytes) {
        flipBits(frame, rng);
        return;
    }
    const u64 mode = rng.below(4); // zero, huge, +1, -1
    if (rng.chance(0.5)) {
        u16 spec_len = static_cast<u16>(frame[6] |
                                        (static_cast<u16>(frame[7])
                                         << 8));
        switch (mode) {
          case 0: spec_len = 0; break;
          case 1: spec_len = 0xffff; break;
          case 2: ++spec_len; break;
          default: --spec_len; break;
        }
        putWireU16(frame, 6, spec_len);
    } else {
        u32 payload_len = 0;
        for (int i = 3; i >= 0; --i)
            payload_len = (payload_len << 8) |
                          frame[40 + static_cast<std::size_t>(i)];
        switch (mode) {
          case 0: payload_len = 0; break;
          case 1: payload_len = 0xffffffffu; break;
          case 2: ++payload_len; break;
          default: --payload_len; break;
        }
        putWireU32(frame, 40, payload_len);
    }
}

void
tamperEdges(Bytes &frame, Rng &rng)
{
    // The wire grammar has no CRC; the closest integrity-adjacent
    // bytes are the magic (frame identity) and the frame tail (the
    // last payload byte — silently absorbed trailing damage would mean
    // the parser did not account for every byte).
    if (frame.empty())
        return;
    if (rng.chance(0.5) && frame.size() >= 4) {
        frame[rng.below(4)] ^= static_cast<u8>(rng.range(1, 255));
    } else {
        frame[frame.size() - 1] ^= static_cast<u8>(rng.range(1, 255));
    }
}

void
swapDiscriminators(Bytes &frame, Rng &rng)
{
    if (frame.size() < 6) {
        flipBits(frame, rng);
        return;
    }
    // Version and direction are the layout's type discriminators.
    const std::size_t pos = rng.chance(0.5) ? 4 : 5;
    frame[pos] = static_cast<u8>(rng.below(256));
}

void
spliceFrames(Bytes &frame, Rng &rng, ByteSpan donor)
{
    ByteSpan tail_source =
        donor.empty() ? ByteSpan(frame.data(), frame.size()) : donor;
    auto head_offsets =
        wireStructuralOffsets(ByteSpan(frame.data(), frame.size()));
    auto tail_offsets = wireStructuralOffsets(tail_source);
    const std::size_t head_cut =
        head_offsets[rng.below(head_offsets.size())];
    const std::size_t tail_cut =
        tail_offsets[rng.below(tail_offsets.size())];
    Bytes spliced(frame.begin(),
                  frame.begin() + static_cast<std::ptrdiff_t>(head_cut));
    spliced.insert(spliced.end(),
                   tail_source.begin() +
                       static_cast<std::ptrdiff_t>(tail_cut),
                   tail_source.end());
    frame = std::move(spliced);
}

void
tamperSpecRegion(Bytes &frame, Rng &rng)
{
    // The stage-header analogue: the codec spec string is the one
    // variable-layout, grammar-checked region (charset [a-z0-9+_-]).
    // Drive bytes outside the charset — NUL, uppercase, high bit.
    if (frame.size() <= kRequestHeaderBytes) {
        flipBits(frame, rng);
        return;
    }
    const u16 spec_len = static_cast<u16>(
        frame[6] | (static_cast<u16>(frame[7]) << 8));
    const std::size_t spec_end =
        std::min(frame.size(),
                 kRequestHeaderBytes + static_cast<std::size_t>(
                                           spec_len));
    if (spec_end <= kRequestHeaderBytes) {
        flipBits(frame, rng);
        return;
    }
    const std::size_t pos =
        kRequestHeaderBytes +
        rng.below(spec_end - kRequestHeaderBytes);
    static constexpr u8 kBad[] = {0x00, 'A', 'Z', 0x7f, 0x80, 0xff,
                                  ' ', '/'};
    frame[pos] = kBad[rng.below(sizeof kBad)];
}

/** Deterministic valid request for trial @p seed. */
WireRequest
buildRequest(Rng &rng, const WireFuzzConfig &config)
{
    static const char *const kSpecs[] = {
        "snappy",      "zstdlite",          "flatelite",
        "gipfeli",     "delta+rle+snappy",  "rle+zstdlite",
        "delta-u32+flatelite",
    };
    WireRequest request;
    request.requestId = rng.next();
    request.tenantId = rng.below(8);
    request.codecSpec = kSpecs[rng.below(std::size(kSpecs))];
    request.direction = rng.chance(0.5)
                            ? codec::Direction::compress
                            : codec::Direction::decompress;
    request.level = static_cast<i32>(rng.range(1, 9));
    request.windowLog = static_cast<u32>(rng.range(10, 22));
    request.deadlineNs = rng.chance(0.25) ? rng.next() : 0;
    request.payload.resize(rng.below(config.maxPayloadBytes + 1));
    for (auto &byte : request.payload)
        byte = static_cast<u8>(rng.below(256));
    return request;
}

} // namespace

std::vector<std::size_t>
wireStructuralOffsets(ByteSpan frame)
{
    std::vector<std::size_t> offsets;
    for (std::size_t edge : kHeaderEdges)
        if (edge <= frame.size())
            offsets.push_back(edge);
    if (frame.size() >= kRequestHeaderBytes) {
        const u16 spec_len = static_cast<u16>(
            frame[6] | (static_cast<u16>(frame[7]) << 8));
        const std::size_t spec_end =
            kRequestHeaderBytes + static_cast<std::size_t>(spec_len);
        if (spec_end <= frame.size())
            offsets.push_back(spec_end);
    }
    offsets.push_back(frame.size());
    std::sort(offsets.begin(), offsets.end());
    offsets.erase(std::unique(offsets.begin(), offsets.end()),
                  offsets.end());
    return offsets;
}

Bytes
mutateWireRequest(ByteSpan frame, MutationClass cls, u64 seed,
                  ByteSpan donor)
{
    Bytes mutated(frame.begin(), frame.end());
    Rng rng(wireMutationSeed(cls, seed));
    switch (cls) {
      case MutationClass::bitFlip: flipBits(mutated, rng); break;
      case MutationClass::truncate:
        truncateAtBoundary(mutated, rng);
        break;
      case MutationClass::lengthTamper: tamperLengths(mutated, rng); break;
      case MutationClass::crcTamper: tamperEdges(mutated, rng); break;
      case MutationClass::chunkTypeSwap:
        swapDiscriminators(mutated, rng);
        break;
      case MutationClass::splice: spliceFrames(mutated, rng, donor); break;
      case MutationClass::stageHeaderTamper:
        tamperSpecRegion(mutated, rng);
        break;
    }
    return mutated;
}

std::string
WireFuzzReport::summary(const WireFuzzConfig &config) const
{
    return "wire-request grammar: " + std::to_string(config.iterations) +
           " iterations, " + std::to_string(trials) + " mutants (" +
           std::to_string(mutantsRejected) + " rejected, " +
           std::to_string(mutantsAccepted) + " canonical), " +
           std::to_string(prefixesChecked) + " prefixes, " +
           std::to_string(failures.size()) + " violations";
}

WireFuzzReport
runWireFuzz(const WireFuzzConfig &config)
{
    WireFuzzReport report;
    auto fail = [&](MutationClass cls, u64 seed, std::string what) {
        report.failures.push_back({cls, seed, std::move(what)});
    };

    Bytes previous_frame; // Splice donor: the prior trial's frame.
    for (u64 iter = 0; iter < config.iterations; ++iter) {
        const u64 seed = config.seedBase + iter;
        Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
        const WireRequest request = buildRequest(rng, config);
        const Bytes frame = serve::encodeRequest(request);
        const ByteSpan frame_span(frame.data(), frame.size());

        // 1. The valid frame must parse and re-encode identically.
        auto parsed = serve::parseRequest(frame_span, config.limits);
        if (!parsed.ok()) {
            fail(MutationClass::bitFlip, seed,
                 "valid frame rejected: " +
                     parsed.status().message());
            continue;
        }
        if (serve::encodeRequest(parsed.value()) != frame) {
            fail(MutationClass::bitFlip, seed,
                 "valid frame round-trip not byte-identical");
            continue;
        }

        // 2. Every strict prefix must be rejected: all header-edge
        //    cuts plus a bounded sample of interior cuts.
        std::vector<std::size_t> cuts(std::begin(kHeaderEdges),
                                      std::end(kHeaderEdges));
        for (unsigned i = 0; i < 32 && frame.size() > 1; ++i)
            cuts.push_back(rng.below(frame.size()));
        for (std::size_t cut : cuts) {
            if (cut >= frame.size())
                continue;
            ++report.prefixesChecked;
            auto prefix =
                serve::parseRequest(frame_span.first(cut),
                                    config.limits);
            if (prefix.ok()) {
                fail(MutationClass::truncate, seed,
                     "strict prefix of " + std::to_string(cut) +
                         " bytes parsed as a complete request");
                break;
            }
            if (failureClass(prefix.status()) !=
                FailureClass::dataError) {
                fail(MutationClass::truncate, seed,
                     std::string("prefix rejection misclassified "
                                 "as ") +
                         failureClassName(
                             failureClass(prefix.status())));
                break;
            }
        }

        // 3. Every mutation class: reject, or accept canonically.
        for (MutationClass cls : allMutationClasses()) {
            Bytes mutated = mutateWireRequest(
                frame_span, cls, seed,
                ByteSpan(previous_frame.data(),
                         previous_frame.size()));
            ++report.trials;
            Result<WireRequest> outcome =
                Status::internal("parse did not run");
            try {
                outcome = serve::parseRequest(
                    ByteSpan(mutated.data(), mutated.size()),
                    config.limits);
            } catch (...) {
                fail(cls, seed, "parseRequest threw");
                continue;
            }
            if (!outcome.ok()) {
                if (failureClass(outcome.status()) !=
                    FailureClass::dataError) {
                    fail(cls, seed,
                         std::string("rejection misclassified as ") +
                             failureClassName(
                                 failureClass(outcome.status())));
                } else {
                    ++report.mutantsRejected;
                }
                continue;
            }
            if (serve::encodeRequest(outcome.value()) != mutated) {
                fail(cls, seed,
                     "accepted mutant is not canonical: re-encode "
                     "differs from the parsed bytes");
                continue;
            }
            ++report.mutantsAccepted;
        }
        previous_frame = frame;
    }
    return report;
}

} // namespace cdpu::harden
