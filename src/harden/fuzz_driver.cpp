#include "harden/fuzz_driver.h"

#include <algorithm>

#include "codec/obs_bridge.h"
#include "codec/session.h"
#include "common/rng.h"
#include "container/container.h"
#include "corpus/generators.h"

namespace cdpu::harden
{

namespace
{

/** Pooled base material: payloads plus their compressed frames in
 *  both container grammars. Built once per battery — the injector
 *  varies the damage, not the substrate. */
struct BaseFrames
{
    std::vector<Bytes> payloads;
    std::vector<Bytes> bufferFrames;    ///< compressInto output.
    std::vector<Bytes> streamFrames;    ///< Session (stream grammar).
    std::vector<Bytes> containerFrames; ///< Block-parallel container.
};

BaseFrames
buildCorpus(const FuzzConfig &config)
{
    const codec::CodecVTable &vtable = codec::registry(config.codec);
    const codec::CodecParams params = vtable.caps.clamp(
        vtable.caps.defaultLevel, vtable.caps.defaultWindowLog);

    // The corpus seed folds the battery's seedBase (not per-iteration
    // seeds), so one battery reuses one substrate.
    Rng rng(mutationSeed(
        {config.codec, MutationClass::bitFlip, config.seedBase}) ^
            0xc0ffee5eedull);

    BaseFrames base;
    const auto classes = corpus::allDataClasses();
    const std::size_t max = std::max<std::size_t>(config.maxPayloadBytes,
                                                  64);
    const std::size_t sizes[] = {0, 1, 33, 512, max / 2, max};
    for (std::size_t size : sizes) {
        auto cls = classes[rng.below(classes.size())];
        base.payloads.push_back(corpus::generate(cls, size, rng));
    }

    for (const Bytes &payload : base.payloads) {
        Bytes frame;
        // Clamped params over synthetic payloads: compression cannot
        // legitimately fail here, and a failure surfaces later as a
        // mutation of an empty frame (harmless).
        (void)vtable.compressInto(payload, params, frame);
        base.bufferFrames.push_back(std::move(frame));

        Bytes stream;
        auto session = vtable.makeCompressSession(params);
        (void)codec::compressAll(*session, payload, 0, stream);
        base.streamFrames.push_back(std::move(stream));

        if (config.frameKind == FrameKind::container) {
            // Small blocks make every payload a multi-block frame, so
            // the index the mutations target actually has entries.
            container::WriteOptions wopts;
            wopts.blockBytes = 256;
            Bytes frame_bytes;
            (void)container::write(config.codec, payload, wopts,
                                   frame_bytes);
            base.containerFrames.push_back(std::move(frame_bytes));
        }
    }
    return base;
}

struct DriveResult
{
    Status status;
    Bytes out;
};

/** Feeds @p data to a decompress session in @p chunk-byte steps
 *  (0 = one feed), draining eagerly, then finishes. Stops at the
 *  first error, like the serve layer's decompressAll. */
DriveResult
driveDecode(codec::DecompressSession &session, ByteSpan data,
            std::size_t chunk)
{
    DriveResult result;
    const std::size_t step = chunk == 0 ? data.size() : chunk;
    std::size_t pos = 0;
    do {
        std::size_t take = std::min(step, data.size() - pos);
        result.status = session.feed(data.subspan(pos, take));
        pos += take;
        session.drain(result.out);
        if (!result.status.ok())
            return result;
    } while (pos < data.size());
    result.status = session.finish();
    session.drain(result.out);
    return result;
}

/** Chunk-granularity-invariant session compression. */
DriveResult
driveCompress(codec::CompressSession &session, ByteSpan data,
              std::size_t chunk)
{
    DriveResult result;
    const std::size_t step = chunk == 0 ? data.size() : chunk;
    std::size_t pos = 0;
    do {
        std::size_t take = std::min(step, data.size() - pos);
        result.status = session.feed(data.subspan(pos, take));
        pos += take;
        session.drain(result.out);
        if (!result.status.ok())
            return result;
    } while (pos < data.size());
    result.status = session.finish();
    session.drain(result.out);
    return result;
}

class Battery
{
  public:
    explicit Battery(const FuzzConfig &config)
        : config_(config), vtable_(codec::registry(config.codec)),
          base_(buildCorpus(config))
    {
        if (config_.telemetry && config_.telemetry->flightEnabled())
            ring_ = &config_.telemetry->flight().ring(0);
    }

    FuzzReport
    run()
    {
        for (u64 i = 0; i < config_.iterations; ++i) {
            MutationSpec spec;
            spec.codec = config_.codec;
            spec.cls =
                allMutationClasses()[i % allMutationClasses().size()];
            spec.seed = config_.seedBase + i;
            if (config_.direction != codec::Direction::decompress)
                compressIteration(spec, i);
            else if (config_.frameKind == FrameKind::container)
                containerIteration(spec, i);
            else
                decodeIteration(spec, i);
            ++report_.iterations;
        }
        return std::move(report_);
    }

  private:
    void
    fail(const MutationSpec &spec, std::string what)
    {
        // The battery is single-threaded, so by the time a violation
        // surfaces the ring writer is quiescent and the dump is exact:
        // the last events are literally the iterations leading here.
        if (config_.telemetry) {
            config_.telemetry->noteFault(
                "fuzz " + codec::codecName(config_.codec) + "/" +
                    codec::directionName(config_.direction) +
                    " seed=" + std::to_string(spec.seed) + ": " + what,
                obs::SpanRecorder::nowNs());
        }
        // Cap the list: one pathological run should not OOM the
        // report; the count still tells the story.
        if (report_.failures.size() < 64)
            report_.failures.push_back({spec, std::move(what)});
    }

    /** One flight event per iteration: always-on recent history. */
    void
    recordFlight(u64 iteration, const Status &status, u64 bytes_in,
                 u64 bytes_out)
    {
        if (!ring_)
            return;
        obs::FlightEvent event;
        event.id = iteration;
        event.timestampNs = obs::SpanRecorder::nowNs();
        event.kind = codec::flightKind(config_.codec);
        event.direction = codec::flightDirection(config_.direction);
        event.outcome = codec::flightOutcome(status);
        event.bytesIn = bytes_in;
        event.bytesOut = bytes_out;
        ring_->record(event);
    }

    /** A decode status must be ok or a data error — usage errors,
     *  resource errors, and faults mean the decoder (not the input)
     *  is wrong. */
    bool
    checkDecodeStatus(const MutationSpec &spec, const Status &status,
                      const char *path)
    {
        FailureClass cls = failureClass(status);
        if (cls == FailureClass::none || cls == FailureClass::dataError)
            return true;
        fail(spec, std::string(path) + " decode returned " +
                       failureClassName(cls) + " (" + status.toString() +
                       ") instead of a clean data error");
        return false;
    }

    void
    decodeIteration(const MutationSpec &spec, u64 i)
    {
        Rng pick(mutationSeed(spec) ^ 0x91cc0fadeull);
        const std::size_t index = pick.below(base_.payloads.size());
        const std::size_t donor_index =
            pick.below(base_.payloads.size());

        // --- Whole-buffer grammar -----------------------------------
        Bytes mutated = CorruptionInjector::mutate(
            base_.bufferFrames[index], spec, FrameKind::buffer,
            base_.bufferFrames[donor_index]);

        Bytes whole;
        Status whole_status = vtable_.decompressInto(mutated, whole);
        recordFlight(i, whole_status, mutated.size(), whole.size());
        checkDecodeStatus(spec, whole_status, "whole-buffer");
        if (whole.size() > config_.outputTripwireBytes) {
            fail(spec, "whole-buffer decode produced " +
                           std::to_string(whole.size()) +
                           " bytes, past the allocation tripwire");
        }
        report_.maxOutputBytes =
            std::max<u64>(report_.maxOutputBytes, whole.size());
        if (whole_status.ok())
            ++report_.survivors;
        else
            ++report_.cleanRejects;

        if (!config_.checkStreaming || config_.chunkSizes.empty())
            return;
        const std::size_t chunk =
            config_.chunkSizes[(i / allMutationClasses().size()) %
                               config_.chunkSizes.size()];

        if (vtable_.caps.streamingSharesBufferFormat) {
            // Sessions consume the same grammar: the session must land
            // in the same failure class as the whole-buffer decode and
            // produce the same bytes on success.
            auto session = vtable_.makeDecompressSession();
            DriveResult chunked = driveDecode(*session, mutated, chunk);
            checkDecodeStatus(spec, chunked.status, "streaming");
            compareOutcomes(spec, whole_status, whole, chunked,
                            "streaming vs whole-buffer", chunk);
            checkSticky(spec, *session, chunked.status);
        } else {
            // Separate stream grammar (snappy framing): mutate the
            // framed form and compare session granularities against a
            // whole-feed session reference.
            Bytes stream_mutated = CorruptionInjector::mutate(
                base_.streamFrames[index], spec, FrameKind::stream,
                base_.streamFrames[donor_index]);
            auto reference_session = vtable_.makeDecompressSession();
            DriveResult reference =
                driveDecode(*reference_session, stream_mutated, 0);
            checkDecodeStatus(spec, reference.status, "stream");
            if (reference.out.size() > config_.outputTripwireBytes) {
                fail(spec, "stream decode produced " +
                               std::to_string(reference.out.size()) +
                               " bytes, past the allocation tripwire");
            }
            report_.maxOutputBytes = std::max<u64>(
                report_.maxOutputBytes, reference.out.size());

            auto session = vtable_.makeDecompressSession();
            DriveResult chunked =
                driveDecode(*session, stream_mutated, chunk);
            checkDecodeStatus(spec, chunked.status, "chunked stream");
            compareOutcomes(spec, reference.status, reference.out,
                            chunked, "chunked vs whole-feed stream",
                            chunk);
            checkSticky(spec, *session, chunked.status);
        }
    }

    /**
     * Container-grammar leg: mutate a multi-block container frame,
     * then hold decodeSequential and decodeParallel(2) to the shared
     * contract — ok-or-dataError only, no output past the tripwire
     * (DecodeOptions::maxOutputBytes carries it into the index
     * validator), and sequential/parallel agreement on FailureClass,
     * bytes, and the deterministic work counters.
     */
    void
    containerIteration(const MutationSpec &spec, u64 i)
    {
        Rng pick(mutationSeed(spec) ^ 0x91cc0fadeull);
        const std::size_t index =
            pick.below(base_.containerFrames.size());
        const std::size_t donor_index =
            pick.below(base_.containerFrames.size());

        Bytes mutated = CorruptionInjector::mutate(
            base_.containerFrames[index], spec, FrameKind::container,
            base_.containerFrames[donor_index]);

        container::DecodeOptions options;
        options.maxOutputBytes = config_.outputTripwireBytes;

        Bytes sequential;
        container::DecodeReport sequential_report;
        Status ss = container::decodeSequential(
            mutated, sequential, options, &sequential_report);
        recordFlight(i, ss, mutated.size(), sequential.size());
        checkDecodeStatus(spec, ss, "container sequential");
        if (sequential.size() > config_.outputTripwireBytes) {
            fail(spec, "container decode produced " +
                           std::to_string(sequential.size()) +
                           " bytes, past the allocation tripwire");
        }
        report_.maxOutputBytes =
            std::max<u64>(report_.maxOutputBytes, sequential.size());
        if (ss.ok())
            ++report_.survivors;
        else
            ++report_.cleanRejects;

        Bytes parallel;
        container::DecodeReport parallel_report;
        Status ps = container::decodeParallel(mutated, 2, parallel,
                                              options, &parallel_report);
        checkDecodeStatus(spec, ps, "container parallel");
        if (failureClass(ss) != failureClass(ps)) {
            fail(spec, "container sequential/parallel verdict "
                       "divergence: " +
                           ss.toString() + " vs " + ps.toString());
            return;
        }
        if (ss.ok() && sequential != parallel) {
            fail(spec, "container parallel output diverges from the "
                       "sequential reference");
        }
        if (sequential_report.work.counters !=
            parallel_report.work.counters) {
            fail(spec, "container work counters depend on the "
                       "schedule");
        }
    }

    void
    compareOutcomes(const MutationSpec &spec, const Status &reference,
                    const Bytes &reference_out,
                    const DriveResult &chunked, const char *label,
                    std::size_t chunk)
    {
        if (failureClass(reference) != failureClass(chunked.status)) {
            fail(spec,
                 std::string(label) + " error-class divergence at chunk=" +
                     std::to_string(chunk) + ": " + reference.toString() +
                     " vs " + chunked.status.toString());
            return;
        }
        if (reference.ok() && reference_out != chunked.out) {
            fail(spec, std::string(label) +
                           " output divergence at chunk=" +
                           std::to_string(chunk));
        }
    }

    /** A failed session must keep reporting the same failure class. */
    void
    checkSticky(const MutationSpec &spec,
                codec::DecompressSession &session, const Status &first)
    {
        if (first.ok())
            return;
        Status again = session.finish();
        if (failureClass(again) != failureClass(first)) {
            fail(spec, "session error not sticky: " + first.toString() +
                           " then " + again.toString());
        }
    }

    void
    compressIteration(const MutationSpec &spec, u64 i)
    {
        Rng pick(mutationSeed(spec) ^ 0x91cc0fadeull);
        const std::size_t index = pick.below(base_.payloads.size());
        const std::size_t donor_index =
            pick.below(base_.payloads.size());

        // Any byte string is a legal compression input, so the
        // injector's output doubles as a payload-shape generator.
        Bytes payload = CorruptionInjector::mutate(
            base_.payloads[index], spec, FrameKind::buffer,
            base_.payloads[donor_index]);
        if (payload.size() > config_.maxPayloadBytes * 2)
            payload.resize(config_.maxPayloadBytes * 2);

        // Sweep the clamped parameter space, not just defaults. Top
        // levels build large match-finder tables, so the full range is
        // sampled on 1 in 8 iterations and the rest stay in the cheap
        // band around the default — full coverage without every
        // iteration paying the heavyweight-tier setup cost.
        const codec::CodecCaps &caps = vtable_.caps;
        int level = caps.defaultLevel;
        if (caps.hasLevels) {
            const int hi = pick.chance(0.125)
                               ? caps.maxLevel
                               : std::min(caps.maxLevel,
                                          caps.defaultLevel + 1);
            level = static_cast<int>(pick.range(
                        static_cast<u64>(0),
                        static_cast<u64>(hi - caps.minLevel))) +
                    caps.minLevel;
        }
        unsigned window =
            caps.hasWindow
                ? static_cast<unsigned>(pick.range(caps.minWindowLog,
                                                   caps.maxWindowLog))
                : caps.defaultWindowLog;
        const codec::CodecParams params = caps.clamp(level, window);

        Bytes compressed;
        Status cs = vtable_.compressInto(payload, params, compressed);
        recordFlight(i, cs, payload.size(), compressed.size());
        if (!cs.ok()) {
            fail(spec, "compress failed on legal input: " +
                           cs.toString());
            return;
        }
        const u64 bound = static_cast<u64>(payload.size()) *
                              caps.maxExpansionNum / caps.maxExpansionDen +
                          caps.maxExpansionSlop;
        if (compressed.size() > bound ||
            compressed.size() >
                vtable_.maxCompressedSize(payload.size())) {
            fail(spec, "compressed output " +
                           std::to_string(compressed.size()) +
                           " exceeds the CodecCaps expansion bound " +
                           std::to_string(bound));
        }

        Bytes round;
        Status ds = vtable_.decompressInto(compressed, round);
        if (!ds.ok() || round != payload) {
            fail(spec, "compress round-trip failed: " + ds.toString());
        }

        if (!config_.checkStreaming || config_.chunkSizes.empty())
            return;
        const std::size_t chunk =
            config_.chunkSizes[(i / allMutationClasses().size()) %
                               config_.chunkSizes.size()];

        // Chunk-invariance reference: when the session shares the
        // whole-buffer container, compressInto's output IS the
        // reference, so only the chunked session runs; otherwise
        // (snappy's framing container) drive a whole-feed session.
        DriveResult reference;
        if (caps.streamingSharesBufferFormat) {
            reference.out = compressed;
        } else {
            auto reference_session = vtable_.makeCompressSession(params);
            reference = driveCompress(*reference_session, payload, 0);
        }
        auto session = vtable_.makeCompressSession(params);
        DriveResult chunked = driveCompress(*session, payload, chunk);
        if (!reference.status.ok() || !chunked.status.ok()) {
            fail(spec, "session compress failed on legal input: " +
                           reference.status.toString() + " / " +
                           chunked.status.toString());
            return;
        }
        if (reference.out != chunked.out) {
            fail(spec, "session compress not chunk-invariant at chunk=" +
                           std::to_string(chunk));
            return;
        }
        auto decode_session = vtable_.makeDecompressSession();
        DriveResult decoded =
            driveDecode(*decode_session, reference.out, 0);
        if (!decoded.status.ok() || decoded.out != payload) {
            fail(spec, "session stream round-trip failed: " +
                           decoded.status.toString());
        }
    }

    FuzzConfig config_;
    const codec::CodecVTable &vtable_;
    BaseFrames base_;
    FuzzReport report_;
    obs::FlightRing *ring_ = nullptr;
};

} // namespace

std::string
FuzzReport::summary(const FuzzConfig &config) const
{
    std::string line = codec::codecName(config.codec) +
                       (config.frameKind == FrameKind::container
                            ? "+container"
                            : "") +
                       "/" + codec::directionName(config.direction) +
                       ": " +
                       std::to_string(iterations) + " iterations";
    if (config.direction == codec::Direction::decompress) {
        line += ", " + std::to_string(cleanRejects) + " clean rejects, " +
                std::to_string(survivors) + " survivors, max output " +
                std::to_string(maxOutputBytes) + " bytes";
    }
    line += ", " + std::to_string(failures.size()) + " failures";
    return line;
}

FuzzReport
runFuzz(const FuzzConfig &config)
{
    return Battery(config).run();
}

} // namespace cdpu::harden
