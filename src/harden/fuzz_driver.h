/**
 * @file
 * Deterministic fuzz battery over the codec registry.
 *
 * One contract, enforced everywhere: feeding a decoder mutated bytes
 * either round-trips (the mutation landed somewhere inert) or returns
 * a clean dataError — never a crash, never a fault-class status, never
 * output past the analytic decode tripwire, and streaming sessions
 * land in the same FailureClass as the whole-buffer entry point at
 * every chunk granularity, with the error sticky across later calls.
 * The compress direction runs the same battery shape on arbitrary
 * payloads: compression must always succeed, respect the CodecCaps
 * expansion bound, stay chunk-granularity invariant, and round-trip.
 *
 * Every iteration is a pure function of (codec, class, seedBase + i);
 * a failure report carries the triple, so any finding replays with a
 * one-line driver call (DESIGN.md §11).
 */

#ifndef CDPU_HARDEN_FUZZ_DRIVER_H_
#define CDPU_HARDEN_FUZZ_DRIVER_H_

#include "codec/registry.h"
#include "harden/injector.h"

namespace cdpu::harden
{

struct FuzzConfig
{
    codec::CodecId codec = codec::CodecId::snappy;
    codec::Direction direction = codec::Direction::decompress;
    u64 iterations = 1000;
    /** Iteration i draws from the triple (codec, class, seedBase+i). */
    u64 seedBase = 0;
    /** Largest corpus payload a base frame compresses. */
    std::size_t maxPayloadBytes = 4 * kKiB;
    /** Session feed granularities; 0 is the whole-buffer feed. */
    std::vector<std::size_t> chunkSizes = {1, 7, 0};
    /** Also drive streaming sessions and compare error classes. */
    bool checkStreaming = true;
};

/** One contract violation, replayable from its spec. */
struct FuzzFailure
{
    MutationSpec spec;
    std::string what;
};

struct FuzzReport
{
    u64 iterations = 0;
    /** Decode direction: mutated frames that still decoded cleanly. */
    u64 survivors = 0;
    /** Decode direction: mutated frames rejected with dataError. */
    u64 cleanRejects = 0;
    /** Largest output any single decode produced. */
    u64 maxOutputBytes = 0;
    std::vector<FuzzFailure> failures;

    bool ok() const { return failures.empty(); }
    /** "snappy/decompress: 10000 iterations, 9980 clean rejects..." */
    std::string summary(const FuzzConfig &config) const;
};

/** Runs the battery for one codec/direction. Deterministic in
 *  @p config; never throws, never aborts — violations land in
 *  FuzzReport::failures. */
FuzzReport runFuzz(const FuzzConfig &config);

/**
 * Decode-output tripwire: any single decode of a frame this battery
 * can construct (mutations of <= maxPayloadBytes-sized compressions)
 * that produces more than this many bytes is an allocation bug, with
 * margin above every codec's analytic per-unit decode bound (snappy's
 * 64/3 element expansion, zstdlite's kMaxBlockRegenSize block cap,
 * the 64 KiB framing chunk cap).
 */
inline constexpr u64 kMaxFuzzOutputBytes = 16 * kMiB;

} // namespace cdpu::harden

#endif // CDPU_HARDEN_FUZZ_DRIVER_H_
