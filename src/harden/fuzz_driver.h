/**
 * @file
 * Deterministic fuzz battery over the codec registry.
 *
 * One contract, enforced everywhere: feeding a decoder mutated bytes
 * either round-trips (the mutation landed somewhere inert) or returns
 * a clean dataError — never a crash, never a fault-class status, never
 * output past the analytic decode tripwire, and streaming sessions
 * land in the same FailureClass as the whole-buffer entry point at
 * every chunk granularity, with the error sticky across later calls.
 * The compress direction runs the same battery shape on arbitrary
 * payloads: compression must always succeed, respect the CodecCaps
 * expansion bound, stay chunk-granularity invariant, and round-trip.
 *
 * Every iteration is a pure function of (codec, class, seedBase + i);
 * a failure report carries the triple, so any finding replays with a
 * one-line driver call (DESIGN.md §11).
 */

#ifndef CDPU_HARDEN_FUZZ_DRIVER_H_
#define CDPU_HARDEN_FUZZ_DRIVER_H_

#include "codec/registry.h"
#include "harden/injector.h"
#include "obs/telemetry.h"

namespace cdpu::harden
{

/**
 * Decode-output tripwire: any single decode of a frame this battery
 * can construct (mutations of <= maxPayloadBytes-sized compressions)
 * that produces more than this many bytes is an allocation bug, with
 * margin above every codec's analytic per-unit decode bound (snappy's
 * 64/3 element expansion, zstdlite's kMaxBlockRegenSize block cap,
 * the 64 KiB framing chunk cap).
 */
inline constexpr u64 kMaxFuzzOutputBytes = 16 * kMiB;

struct FuzzConfig
{
    codec::CodecId codec = codec::CodecId::snappy;
    codec::Direction direction = codec::Direction::decompress;
    u64 iterations = 1000;
    /** Iteration i draws from the triple (codec, class, seedBase+i). */
    u64 seedBase = 0;
    /** Largest corpus payload a base frame compresses. */
    std::size_t maxPayloadBytes = 4 * kKiB;
    /**
     * Grammar the decode battery mutates. `buffer` (the default) is
     * the whole-buffer/stream battery; `container` fuzzes the
     * block-parallel container instead: base frames are multi-block
     * container::write() output around the codec, mutations use the
     * container grammar, and every iteration cross-checks
     * decodeSequential against decodeParallel(2) for identical
     * FailureClass, bytes, and work counters. The outputTripwireBytes
     * bound doubles as DecodeOptions::maxOutputBytes, so an index-
     * driven allocation lie trips the same wire as a decoder bug.
     */
    FrameKind frameKind = FrameKind::buffer;
    /** Session feed granularities; 0 is the whole-buffer feed. */
    std::vector<std::size_t> chunkSizes = {1, 7, 0};
    /** Also drive streaming sessions and compare error classes. */
    bool checkStreaming = true;
    /** Decode-output allocation tripwire; the default is the analytic
     *  bound above. Tests lower it to force a deterministic failure
     *  and exercise the fault-dump path. */
    u64 outputTripwireBytes = kMaxFuzzOutputBytes;
    /**
     * Optional telemetry hub (not owned). The battery records one
     * flight event per iteration into ring 0 — (iteration, codec,
     * direction, outcome class, frame/output sizes) — and the first
     * contract violation freezes the recent history as a fault dump
     * (Telemetry::faultDump), so "iteration 8731 failed" arrives with
     * the events leading up to it.
     */
    obs::Telemetry *telemetry = nullptr;
};

/** One contract violation, replayable from its spec. */
struct FuzzFailure
{
    MutationSpec spec;
    std::string what;
};

struct FuzzReport
{
    u64 iterations = 0;
    /** Decode direction: mutated frames that still decoded cleanly. */
    u64 survivors = 0;
    /** Decode direction: mutated frames rejected with dataError. */
    u64 cleanRejects = 0;
    /** Largest output any single decode produced. */
    u64 maxOutputBytes = 0;
    std::vector<FuzzFailure> failures;

    bool ok() const { return failures.empty(); }
    /** "snappy/decompress: 10000 iterations, 9980 clean rejects..." */
    std::string summary(const FuzzConfig &config) const;
};

/** Runs the battery for one codec/direction. Deterministic in
 *  @p config; never throws, never aborts — violations land in
 *  FuzzReport::failures. */
FuzzReport runFuzz(const FuzzConfig &config);

} // namespace cdpu::harden

#endif // CDPU_HARDEN_FUZZ_DRIVER_H_
