/**
 * @file
 * Registry-driven corruption injector.
 *
 * Decode paths in a hyperscale fleet see wire corruption and
 * attacker-shaped bytes millions of times per second (the paper's
 * Section 3 serving context; Section 5's units must reject malformed
 * input without wedging the pipeline). The injector turns any valid
 * compressed frame into a structured family of invalid-or-damaged
 * neighbours: bit flips, truncation at structural boundaries,
 * length-field/varint tampering, CRC tampering, chunk-type swaps, and
 * splices of two frames. Every mutation is a pure function of the
 * (codec, class, seed) triple — no wall-clock, no global state — so a
 * fuzz failure replays from the triple its report names (DESIGN.md
 * §11).
 */

#ifndef CDPU_HARDEN_INJECTOR_H_
#define CDPU_HARDEN_INJECTOR_H_

#include <string>
#include <vector>

#include "codec/codec.h"
#include "common/types.h"

namespace cdpu::harden
{

/** Structured mutation families, ordered as the fuzz driver cycles
 *  through them. */
enum class MutationClass : u8
{
    bitFlip = 0,   ///< Flip 1..8 random bits anywhere in the frame.
    truncate,      ///< Cut at (or one byte around) a structural boundary.
    lengthTamper,  ///< Rewrite a length field / varint (zero, huge, ±1).
    crcTamper,     ///< Damage an integrity field (or trailing bytes for
                   ///< codecs without one).
    chunkTypeSwap, ///< Rewrite a chunk/block type discriminator.
    splice,        ///< Head of one frame + tail of another, cut at
                   ///< structural boundaries.
    stageHeaderTamper, ///< Pipeline codecs: decode the terminal frame,
                       ///< tamper the leading stage header (tag /
                       ///< claimed raw size), re-encode. Base codecs:
                       ///< deterministic leading-byte tamper.
};

inline constexpr std::size_t kNumMutationClasses = 7;

/** All classes, in enum order (iteration in drivers and tests). */
const std::vector<MutationClass> &allMutationClasses();

/** Stable lowercase class name for reports ("bit_flip", ...). */
std::string mutationClassName(MutationClass cls);

/**
 * Which container grammar a frame follows. For codecs whose streaming
 * sessions share the whole-buffer container the two are identical;
 * snappy's session output is framed (framing_format.txt) while its
 * buffer form is a raw preamble + element stream. `container` is the
 * block-parallel container (container/container.h, DESIGN.md §14):
 * the MutationSpec's codec is the inner block codec, and mutations
 * target the frame index — offset/size varints, the index CRC, the
 * version/codec/flags bytes, and block-boundary splices.
 */
enum class FrameKind
{
    buffer,
    stream,
    container,
};

/** The reproduction triple. Two equal specs over equal input frames
 *  produce byte-identical mutations. */
struct MutationSpec
{
    codec::CodecId codec = codec::CodecId::snappy;
    MutationClass cls = MutationClass::bitFlip;
    u64 seed = 0;
};

/** Mixes the triple into the RNG seed the mutation draws from. */
u64 mutationSeed(const MutationSpec &spec);

/** "codec=snappy class=bit_flip seed=42" — the replay line a failure
 *  report carries. */
std::string describeSpec(const MutationSpec &spec);

class CorruptionInjector
{
  public:
    /**
     * Structural boundaries of @p frame under @p kind's grammar:
     * offsets where one field or unit ends and the next begins
     * (header/varint ends, chunk and block starts, CRC edges), always
     * including 0 and frame.size(). The walk is a best-effort skeleton
     * parse — it never validates, and stops at the first byte it
     * cannot skeleton-parse — so it accepts frames that are already
     * damaged. Sorted and deduplicated.
     */
    static std::vector<std::size_t> structuralOffsets(codec::CodecId id,
                                                      FrameKind kind,
                                                      ByteSpan frame);

    /**
     * Applies @p spec's mutation class to @p frame and returns the
     * mutated copy. @p donor feeds the splice class (ignored by the
     * others); when empty, splice folds the frame onto itself. The
     * result is deterministic in (spec, frame, donor) and may
     * occasionally equal the input (e.g. an empty frame): callers
     * treat "still decodes" as a legal outcome.
     */
    static Bytes mutate(ByteSpan frame, const MutationSpec &spec,
                        FrameKind kind, ByteSpan donor = {});
};

} // namespace cdpu::harden

#endif // CDPU_HARDEN_INJECTOR_H_
