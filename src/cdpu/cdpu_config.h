/**
 * @file
 * CDPU configuration: every parameter from Section 5.8 of the paper.
 *
 * In the paper some of these are compile-time (Chisel generator
 * parameters) and some runtime; in this software model all are runtime
 * so sweeps are cheap, and the RunT/CompileT classification is kept in
 * the comments for fidelity.
 */

#ifndef CDPU_CDPU_CDPU_CONFIG_H_
#define CDPU_CDPU_CDPU_CONFIG_H_

#include <string>

#include "lz77/hash_table.h"
#include "obs/counters.h"
#include "sim/placement.h"

namespace cdpu::hw
{

/** Full parameter set for one generated CDPU instance. */
struct CdpuConfig
{
    // (1) Accelerator placement [CompileT].
    sim::Placement placement = sim::Placement::rocc;

    // (3)/(4) History window SRAM bytes [RunT & CompileT]; bounds
    // on-accelerator match offsets for both directions.
    std::size_t historySramBytes = 64 * kKiB;

    // (5)-(8) LZ77 encoder hash table [RunT & CompileT].
    lz77::HashTableConfig hashTable{
        .log2Entries = 14,
        .ways = 1,
        .hashFunction = lz77::HashFunction::multiplicative,
        .minMatch = 4,
    };

    // (9) Huffman expander speculation count [CompileT].
    unsigned huffSpeculations = 16;

    // (10) Huffman compressor stats-collection width [CompileT].
    unsigned huffStatBytesPerCycle = 8;

    // (11) FSE compressor stats-collection width [CompileT].
    unsigned fseStatBytesPerCycle = 8;

    // (12) Max accuracy (table log) of FSE compression tables
    // [CompileT].
    unsigned fseMaxAccuracyLog = 9;

    // (2) Algorithm support is expressed by which PU class is
    // instantiated (SnappyDecompressorPU, ZstdCompressorPU, ...).

    /** Accelerator TLB entries (Figure 8's TLBs; fully associative). */
    unsigned tlbEntries = 32;

    /** Accelerator clock; the evaluation models 2 GHz. */
    double clockGhz = 2.0;

    /** Short label like "RoCC/64K/ht14" for report rows. */
    std::string label() const;
};

/**
 * Result of one accelerated (de)compression call.
 *
 * Model-internal accounting lives in a counter snapshot (the diff of
 * the PU's registry across the call) instead of loose fields; the
 * accessors below name the entries ablation reports care about, and
 * everything else — per-level cache hits, TLB traffic, link crossings,
 * call-size histograms — rides along in @ref counters.
 */
struct PuResult
{
    u64 cycles = 0;
    std::size_t inputBytes = 0;
    std::size_t outputBytes = 0;

    /** Per-call delta of every "pu.*" / "mem.*" / "tlb.*" counter. */
    obs::CounterSnapshot counters;

    u64 computeCycles() const { return counters.at("pu.compute_cycles"); }
    u64 streamInCycles() const
    {
        return counters.at("pu.stream_in_cycles");
    }
    u64 streamOutCycles() const
    {
        return counters.at("pu.stream_out_cycles");
    }
    u64 historyFallbacks() const
    {
        return counters.at("pu.history_fallbacks");
    }
    u64 fallbackCycles() const
    {
        return counters.at("pu.fallback_cycles");
    }
    u64 serialStallCycles() const
    {
        return counters.at("pu.serial_stall_cycles");
    }
    u64 tlbMisses() const { return counters.at("tlb.misses"); }
    u64 translationCycles() const
    {
        return counters.at("pu.translation_cycles");
    }

    /** Wall time at the configured clock. */
    double
    seconds(double clock_ghz) const
    {
        return static_cast<double>(cycles) / (clock_ghz * 1e9);
    }
};

} // namespace cdpu::hw

#endif // CDPU_CDPU_CDPU_CONFIG_H_
