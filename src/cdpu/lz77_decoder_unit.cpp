#include "cdpu/lz77_decoder_unit.h"

#include <cmath>

#include "cdpu/calibration.h"

namespace cdpu::hw
{

void
Lz77DecoderUnit::advanceOutput(std::size_t length)
{
    outPos_ += length;
    // Warm the cache model in 4 KiB chunks: the writer streams output
    // through the L2 (Figure 8), so recent history stays resident.
    if (outPos_ - touchedUpTo_ >= 4096) {
        memory_.touchStream(touchedUpTo_, outPos_ - touchedUpTo_);
        touchedUpTo_ = outPos_;
    }
}

void
Lz77DecoderUnit::literal(std::size_t length)
{
    cyclesAcc_ += kElementDecodeCycles +
                  static_cast<double>(length) / kLitCopyBytesPerCycle;
    advanceOutput(length);
}

void
Lz77DecoderUnit::copy(std::size_t length, std::size_t offset)
{
    double copy_cycles =
        kElementDecodeCycles +
        static_cast<double>(length) / kMatchCopyBytesPerCycle;

    if (offset > config_.historySramBytes) {
        // Off-chip history: a dependent read of the match source
        // through L2/LLC/DRAM; PCIeNoCache and Chiplet placements also
        // pay the link round-trip (PCIeLocalCache serves it from the
        // card-local cache/DRAM at local latency).
        u64 addr = outPos_ >= offset ? outPos_ - offset : 0;
        u64 latency = memory_.access(addr, length) +
                      model_.intermediateExtraCycles;
        if (model_.intermediateCrossesLink)
            latency += 2 * model_.linkLatencyCycles;
        // A few fallback fetches stay in flight concurrently.
        latency = static_cast<u64>(
            static_cast<double>(latency) / kFallbackOverlap);
        ++fallbacks_;
        fallbackCycles_ += latency;
        copy_cycles += static_cast<double>(latency);
    }
    cyclesAcc_ += copy_cycles;
    advanceOutput(length);
}

void
Lz77DecoderUnit::sequence(std::size_t literal_len, std::size_t match_len,
                          std::size_t offset)
{
    double seq_cycles =
        kElementDecodeCycles +
        static_cast<double>(literal_len) / kLitCopyBytesPerCycle +
        static_cast<double>(match_len) / kMatchCopyBytesPerCycle;
    advanceOutput(literal_len);

    if (offset > config_.historySramBytes) {
        u64 addr = outPos_ >= offset ? outPos_ - offset : 0;
        u64 latency = memory_.access(addr, match_len) +
                      model_.intermediateExtraCycles;
        if (model_.intermediateCrossesLink)
            latency += 2 * model_.linkLatencyCycles;
        latency = static_cast<u64>(
            static_cast<double>(latency) / kFallbackOverlap);
        ++fallbacks_;
        fallbackCycles_ += latency;
        seq_cycles += static_cast<double>(latency);
    }
    cyclesAcc_ += seq_cycles;
    advanceOutput(match_len);
}

} // namespace cdpu::hw
