/**
 * @file
 * Shared per-call cycle assembly for all processing units.
 *
 * Combines the compute stage with the memloader/memwriter streams
 * (overlapped; the slowest wins), adds serialized pointer-chase stalls
 * on data-dependent compressed-input fetches, address-translation
 * costs through the accelerator TLB (Figure 8), the RoCC dispatch
 * overhead, and the placement link round trip.
 */

#ifndef CDPU_CDPU_CALL_ASSEMBLY_H_
#define CDPU_CDPU_CALL_ASSEMBLY_H_

#include "cdpu/cdpu_config.h"
#include "sim/memory_hierarchy.h"
#include "sim/tlb.h"

namespace cdpu::hw
{

/** Per-call inputs to the assembly. */
struct CallShape
{
    u64 computeCycles = 0;
    std::size_t inBytes = 0;
    std::size_t outBytes = 0;
    /** Bytes of the data-dependent (serially fetched) stream. */
    std::size_t serializedStreamBytes = 0;
    /** Monotonic per-PU call number; separates buffer addresses so
     *  consecutive calls do not accidentally share TLB pages. */
    u64 callSequence = 0;
};

/** Assembles the final PuResult for one accelerator call. */
PuResult assembleCall(const CdpuConfig &config,
                      const sim::PlacementModel &model,
                      sim::MemoryHierarchy &memory, sim::Tlb &tlb,
                      const CallShape &shape);

} // namespace cdpu::hw

#endif // CDPU_CDPU_CALL_ASSEMBLY_H_
