/**
 * @file
 * Shared per-call cycle assembly for all processing units.
 *
 * Combines the compute stage with the memloader/memwriter streams
 * (overlapped; the slowest wins), adds serialized pointer-chase stalls
 * on data-dependent compressed-input fetches, address-translation
 * costs through the accelerator TLB (Figure 8), the RoCC dispatch
 * overhead, and the placement link round trip.
 *
 * The assembly is also the observability choke point: it accumulates
 * every "pu.*" counter into the PU's registry, re-exports the memory
 * hierarchy and TLB state, returns the per-call delta inside
 * PuResult::counters, and — when a TraceSession is attached — lays the
 * call out as dispatch / fetch / compute / writeback spans on the PU's
 * cumulative-cycle timeline.
 */

#ifndef CDPU_CDPU_CALL_ASSEMBLY_H_
#define CDPU_CDPU_CALL_ASSEMBLY_H_

#include "cdpu/cdpu_config.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "sim/memory_hierarchy.h"
#include "sim/tlb.h"

namespace cdpu::hw
{

/** Per-call inputs to the assembly. */
struct CallShape
{
    u64 computeCycles = 0;
    std::size_t inBytes = 0;
    std::size_t outBytes = 0;
    /** Bytes of the data-dependent (serially fetched) stream. */
    std::size_t serializedStreamBytes = 0;
    /** Monotonic per-PU call number; separates buffer addresses so
     *  consecutive calls do not accidentally share TLB pages. */
    u64 callSequence = 0;
    /** History-SRAM overflow fallbacks from the LZ77 decoder, already
     *  included in computeCycles; surfaced as counters. */
    u64 historyFallbacks = 0;
    u64 fallbackCycles = 0;
};

/**
 * Assembles the final PuResult for one accelerator call, recording
 * per-call counters into @p registry (the PU's own registry; its diff
 * across the call becomes PuResult::counters). When @p trace is
 * non-null the call's phases are emitted as spans named under
 * @p pu_name.
 */
PuResult assembleCall(const CdpuConfig &config,
                      const sim::PlacementModel &model,
                      sim::MemoryHierarchy &memory, sim::Tlb &tlb,
                      const CallShape &shape,
                      obs::CounterRegistry &registry,
                      obs::TraceSession *trace = nullptr,
                      const char *pu_name = "pu");

} // namespace cdpu::hw

#endif // CDPU_CDPU_CALL_ASSEMBLY_H_
