#include "cdpu/huffman_units.h"

#include <algorithm>
#include <cmath>

#include "cdpu/calibration.h"
#include "huffman/code_builder.h"

namespace cdpu::hw
{

u64
HuffmanExpanderUnit::tableBuildCycles() const
{
    double table_entries =
        static_cast<double>(1u << huffman::kDefaultMaxBits);
    return static_cast<u64>(256 +
                            table_entries / kHuffTableFillPerCycle);
}

double
HuffmanExpanderUnit::commitRate(double avg_code_bits) const
{
    avg_code_bits = std::max(avg_code_bits, 1.0);
    double window = std::pow(
        static_cast<double>(config_.huffSpeculations),
        kHuffSpecExponent);
    return std::clamp(kHuffLaneEfficiency * window / avg_code_bits,
                      0.25, kHuffCommitWidthCap);
}

u64
HuffmanExpanderUnit::decodeCycles(std::size_t symbol_count,
                                  std::size_t stream_bytes) const
{
    if (symbol_count == 0)
        return 0;
    double avg_bits = static_cast<double>(stream_bytes) * 8 /
                      static_cast<double>(symbol_count);
    return static_cast<u64>(std::ceil(
        static_cast<double>(symbol_count) / commitRate(avg_bits)));
}

u64
HuffmanCompressorUnit::statsCycles(std::size_t symbol_count) const
{
    return symbol_count / std::max(1u, config_.huffStatBytesPerCycle) +
           1;
}

u64
HuffmanCompressorUnit::dictBuildCycles() const
{
    // Sorting network over 256 symbols plus canonical assignment.
    return 256 * 8 + (1u << huffman::kDefaultMaxBits) / 4;
}

u64
HuffmanCompressorUnit::encodeCycles(std::size_t symbol_count) const
{
    return static_cast<u64>(std::ceil(
        static_cast<double>(symbol_count) /
        kHuffEncodeSymbolsPerCycle));
}

} // namespace cdpu::hw
