#include "cdpu/snappy_pu.h"

#include <algorithm>
#include <cmath>

#include "cdpu/call_assembly.h"
#include "cdpu/calibration.h"
#include "cdpu/lz77_decoder_unit.h"
#include "cdpu/lz77_encoder_unit.h"
#include "common/varint.h"
#include "sim/stream_model.h"

namespace cdpu::hw
{

SnappyDecompressorPU::SnappyDecompressorPU(const CdpuConfig &config)
    : config_(config),
      model_(sim::placementModel(config.placement, config.clockGhz)),
      memory_(), tlb_(config.tlbEntries)
{}

Result<PuResult>
SnappyDecompressorPU::run(ByteSpan compressed, Bytes *output)
{
    std::size_t pos = 0;
    auto expected = getVarint(compressed, pos);
    if (!expected.ok())
        return expected.status();

    std::vector<snappy::Element> elements;
    CDPU_RETURN_IF_ERROR(snappy::decodeElements(
        compressed, pos, expected.value(), elements));

    // Replay elements through the LZ77 decoder unit.
    Lz77DecoderUnit lz77(config_, memory_);
    for (const auto &element : elements) {
        if (element.type == snappy::ElementType::literal)
            lz77.literal(element.length);
        else
            lz77.copy(element.length, element.offset);
    }

    CallShape shape;
    shape.computeCycles = lz77.cycles();
    shape.inBytes = compressed.size();
    shape.outBytes = expected.value();
    shape.serializedStreamBytes = compressed.size();
    shape.callSequence = calls_++;
    shape.historyFallbacks = lz77.fallbacks();
    shape.fallbackCycles = lz77.fallbackCycles();
    PuResult result = assembleCall(config_, model_, memory_, tlb_,
                                   shape, registry_, trace_,
                                   "snappy_decomp");

    if (output) {
        CDPU_RETURN_IF_ERROR(snappy::applyElements(
            compressed, elements, expected.value(), *output));
    }
    return result;
}

SnappyCompressorPU::SnappyCompressorPU(const CdpuConfig &config)
    : config_(config),
      model_(sim::placementModel(config.placement, config.clockGhz)),
      memory_(), tlb_(config.tlbEntries)
{}

Result<PuResult>
SnappyCompressorPU::run(ByteSpan input, Bytes *output)
{
    // Functional compression with the hardware's geometry. The
    // hardware has no reason to skip probes on incompressible data
    // (Section 6.3), hence skipAcceleration = false.
    snappy::CompressorConfig codec_config;
    codec_config.hashTable = config_.hashTable;
    codec_config.windowSize =
        std::min(config_.historySramBytes, snappy::kBlockSize);
    codec_config.skipAcceleration = false;

    lz77::MatchFinderStats stats;
    Bytes compressed = snappy::compress(input, codec_config, &stats);

    Lz77EncoderUnit encoder(config_);
    CallShape shape;
    shape.computeCycles = encoder.cycles(stats, input.size());
    shape.inBytes = input.size();
    shape.outBytes = compressed.size();
    shape.callSequence = calls_++;
    PuResult result = assembleCall(config_, model_, memory_, tlb_,
                                   shape, registry_, trace_,
                                   "snappy_comp");

    if (output)
        *output = std::move(compressed);
    else
        result.outputBytes = compressed.size();
    return result;
}

} // namespace cdpu::hw
