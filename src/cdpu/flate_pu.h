/**
 * @file
 * Flate processing units, composed from the same generator unit
 * library as the Snappy/ZStd PUs (Section 3.4's agile-hardware
 * argument: the Flate decompressor is the ZStd decompressor minus the
 * FSE expander, and moving from Flate to ZStd "would mostly entail
 * adding an FSE module").
 */

#ifndef CDPU_CDPU_FLATE_PU_H_
#define CDPU_CDPU_FLATE_PU_H_

#include "cdpu/cdpu_config.h"
#include "flatelite/compress.h"
#include "flatelite/decompress.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "sim/memory_hierarchy.h"
#include "sim/tlb.h"

namespace cdpu::hw
{

/** Flate decompressor PU: Huffman expander + LZ77 decoder. */
class FlateDecompressorPU
{
  public:
    explicit FlateDecompressorPU(const CdpuConfig &config);

    Result<PuResult> run(ByteSpan compressed, Bytes *output = nullptr);

    /** Cycle model over a previously captured decode trace. */
    PuResult runFromTrace(const flatelite::FileTrace &trace,
                          std::size_t compressed_bytes);

    void attachTrace(obs::TraceSession *session) { trace_ = session; }
    obs::CounterSnapshot counters() const { return registry_.snapshot(); }

  private:
    CdpuConfig config_;
    sim::PlacementModel model_;
    sim::MemoryHierarchy memory_;
    sim::Tlb tlb_;
    obs::CounterRegistry registry_;
    obs::TraceSession *trace_ = nullptr;
    u64 calls_ = 0;
};

/** Flate compressor PU: LZ77 encoder + Huffman compressor. */
class FlateCompressorPU
{
  public:
    explicit FlateCompressorPU(const CdpuConfig &config);

    Result<PuResult> run(ByteSpan input, Bytes *output = nullptr);

    void attachTrace(obs::TraceSession *session) { trace_ = session; }
    obs::CounterSnapshot counters() const { return registry_.snapshot(); }

  private:
    CdpuConfig config_;
    sim::PlacementModel model_;
    sim::MemoryHierarchy memory_;
    sim::Tlb tlb_;
    obs::CounterRegistry registry_;
    obs::TraceSession *trace_ = nullptr;
    u64 calls_ = 0;
};

} // namespace cdpu::hw

#endif // CDPU_CDPU_FLATE_PU_H_
