#include "cdpu/lz77_encoder_unit.h"

#include <cmath>

#include "cdpu/calibration.h"

namespace cdpu::hw
{

u64
Lz77EncoderUnit::cycles(const lz77::MatchFinderStats &stats,
                        std::size_t input_bytes) const
{
    double hash_cycles =
        static_cast<double>(input_bytes) / kHashPositionsPerCycle;
    double probe_cycles =
        static_cast<double>(stats.candidateProbes) /
        kProbeChecksPerCycle;
    double extend_cycles =
        static_cast<double>(stats.matchBytes) /
        kMatchExtendBytesPerCycle;
    double literal_cycles =
        static_cast<double>(stats.literalBytes) /
        kLitEmitBytesPerCycle;
    return static_cast<u64>(std::ceil(hash_cycles + probe_cycles +
                                      extend_cycles + literal_cycles));
}

} // namespace cdpu::hw
