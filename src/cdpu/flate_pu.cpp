#include "cdpu/flate_pu.h"

#include <algorithm>
#include <cmath>

#include "cdpu/call_assembly.h"
#include "cdpu/calibration.h"
#include "cdpu/huffman_units.h"
#include "cdpu/lz77_decoder_unit.h"
#include "cdpu/lz77_encoder_unit.h"
#include "common/histogram.h"
#include "sim/stream_model.h"

namespace cdpu::hw
{

FlateDecompressorPU::FlateDecompressorPU(const CdpuConfig &config)
    : config_(config),
      model_(sim::placementModel(config.placement, config.clockGhz)),
      memory_(), tlb_(config.tlbEntries)
{}

Result<PuResult>
FlateDecompressorPU::run(ByteSpan compressed, Bytes *output)
{
    flatelite::FileTrace trace;
    auto decoded = flatelite::decompress(compressed, &trace);
    if (!decoded.ok())
        return decoded.status();
    if (output)
        *output = std::move(decoded).value();
    return runFromTrace(trace, compressed.size());
}

PuResult
FlateDecompressorPU::runFromTrace(const flatelite::FileTrace &trace,
                                  std::size_t compressed_bytes)
{
    HuffmanExpanderUnit huff(config_);
    Lz77DecoderUnit lz77(config_, memory_);

    u64 compute = 0;
    for (const auto &block : trace.blocks) {
        if (!block.compressed) {
            lz77.literal(block.regenSize);
            continue;
        }
        // Unlike ZStd, every symbol (literals AND length/distance
        // codes) flows through the Huffman expander.
        u64 huff_cycles = huff.tableBuildCycles() +
                          huff.decodeCycles(block.symbolCount,
                                            block.streamBytes);
        u64 replay_before = lz77.cycles();
        std::size_t lit_cursor = 0;
        for (const auto &seq : block.sequences) {
            lz77.sequence(seq.literalLength, seq.matchLength,
                          seq.offset);
            lit_cursor += seq.literalLength;
        }
        lz77.literal(block.literalBytes - lit_cursor);
        u64 replay = lz77.cycles() - replay_before;
        compute += kZstdBlockOverheadCycles + huff_cycles + replay;
    }

    CallShape shape;
    shape.computeCycles = compute;
    shape.inBytes = compressed_bytes;
    shape.outBytes = trace.contentSize;
    shape.serializedStreamBytes = compressed_bytes;
    shape.callSequence = calls_++;
    shape.historyFallbacks = lz77.fallbacks();
    shape.fallbackCycles = lz77.fallbackCycles();
    return assembleCall(config_, model_, memory_, tlb_, shape,
                        registry_, trace_, "flate_decomp");
}

FlateCompressorPU::FlateCompressorPU(const CdpuConfig &config)
    : config_(config),
      model_(sim::placementModel(config.placement, config.clockGhz)),
      memory_(), tlb_(config.tlbEntries)
{}

Result<PuResult>
FlateCompressorPU::run(ByteSpan input, Bytes *output)
{
    flatelite::CompressorConfig codec_config;
    codec_config.level = 6;
    codec_config.windowLog = std::clamp<unsigned>(
        floorLog2(std::max<std::size_t>(config_.historySramBytes, 1)),
        flatelite::kMinWindowLog, flatelite::kMaxWindowLog);
    codec_config.overrideMatchFinder = true;
    codec_config.matchFinderOverride = config_.hashTable;

    flatelite::FileTrace trace;
    lz77::MatchFinderStats stats;
    auto compressed =
        flatelite::compress(input, codec_config, &trace, &stats);
    if (!compressed.ok())
        return compressed.status();

    Lz77EncoderUnit lz77(config_);
    HuffmanCompressorUnit huff(config_);
    u64 entropy = 0;
    for (const auto &block : trace.blocks) {
        if (!block.compressed)
            continue;
        entropy += kZstdBlockOverheadCycles +
                   huff.statsCycles(block.regenSize) +
                   huff.dictBuildCycles() +
                   huff.encodeCycles(block.symbolCount);
    }

    u64 compute = lz77.cycles(stats, input.size()) + entropy;
    CallShape shape;
    shape.computeCycles = compute;
    shape.inBytes = input.size();
    shape.outBytes = compressed.value().size();
    shape.callSequence = calls_++;
    PuResult result = assembleCall(config_, model_, memory_, tlb_,
                                   shape, registry_, trace_,
                                   "flate_comp");
    if (output)
        *output = std::move(compressed).value();
    return result;
}

} // namespace cdpu::hw
