/**
 * @file
 * Cycle model of the LZ77 decoder unit (Section 5.2): history-window
 * SRAM with off-chip fallback through the shared memory hierarchy.
 *
 * The unit replays (literal, copy) elements in output order, tracking
 * the output cursor itself. Copies whose offset fits the
 * on-accelerator history SRAM complete at the SRAM copy width; larger
 * offsets issue a dependent memory request through the modeled
 * L2/LLC/DRAM, crossing the placement link when the placement exposes
 * intermediate accesses (Figure 11's PCIeNoCache vs PCIeLocalCache
 * distinction). Output writes stream through the L2, keeping recent
 * history cache-resident for those fallbacks.
 */

#ifndef CDPU_CDPU_LZ77_DECODER_UNIT_H_
#define CDPU_CDPU_LZ77_DECODER_UNIT_H_

#include "cdpu/cdpu_config.h"
#include "sim/memory_hierarchy.h"

namespace cdpu::hw
{

/** Accumulates replay cycles for one accelerator call. */
class Lz77DecoderUnit
{
  public:
    Lz77DecoderUnit(const CdpuConfig &config, sim::MemoryHierarchy &memory)
        : config_(config),
          model_(sim::placementModel(config.placement, config.clockGhz)),
          memory_(memory)
    {}

    /** Replays a literal run of @p length bytes. */
    void literal(std::size_t length);

    /** Replays a copy of @p length bytes from @p offset back. */
    void copy(std::size_t length, std::size_t offset);

    /**
     * Replays one ZStd sequence (literal run + match) as a single
     * pipelined writer operation: the per-element tag decode is paid
     * once, because the sequence was already expanded by the FSE stage
     * (whose cycles are accounted separately).
     */
    void sequence(std::size_t literal_len, std::size_t match_len,
                  std::size_t offset);

    u64
    cycles() const
    {
        return static_cast<u64>(cyclesAcc_);
    }
    u64 outputPos() const { return outPos_; }
    u64 fallbacks() const { return fallbacks_; }
    u64 fallbackCycles() const { return fallbackCycles_; }

  private:
    /** Streams newly produced output lines into the cache model. */
    void advanceOutput(std::size_t length);

    const CdpuConfig &config_;
    sim::PlacementModel model_;
    sim::MemoryHierarchy &memory_;
    double cyclesAcc_ = 0; ///< Fractional per-element costs add up.
    u64 outPos_ = 0;
    u64 touchedUpTo_ = 0;
    u64 fallbacks_ = 0;
    u64 fallbackCycles_ = 0;
};

} // namespace cdpu::hw

#endif // CDPU_CDPU_LZ77_DECODER_UNIT_H_
