/**
 * @file
 * Microarchitectural calibration constants for the CDPU cycle models.
 *
 * The models are mechanistic — every swept parameter acts through a
 * mechanism (SRAM fallbacks, hash probes, speculation width, link
 * round-trips) — but absolute rates need pipeline-width constants. The
 * values here are set so the flagship configurations land on the
 * paper's measured anchors (Section 6):
 *
 *   Snappy decompress, RoCC, 64 KiB history : 11.4 GB/s  (10.4x Xeon)
 *   Snappy compress,  RoCC, 64K/2^14 hash   :  5.84 GB/s (16.2x Xeon)
 *   ZStd decompress,  RoCC, 64K, 16 spec    :  3.95 GB/s ( 4.2x Xeon)
 *   ZStd compress,    RoCC, 64K/2^14 hash   :  3.5  GB/s (15.8x Xeon)
 *
 * All widths are per accelerator clock (2 GHz in the evaluation).
 */

#ifndef CDPU_CDPU_CALIBRATION_H_
#define CDPU_CDPU_CALIBRATION_H_

#include "common/types.h"

namespace cdpu::hw
{

// --- System interface (Section 5.1) --------------------------------------

/** Fixed RoCC dispatch + configuration cost per accelerator call. */
inline constexpr u64 kCallSetupCycles = 220;

/** Compressed-input bytes between serialized pointer-chase fetches in
 *  the decompressors (tag streams are data-dependent, so the loader
 *  periodically stalls for the next line before decode can proceed). */
inline constexpr std::size_t kSerialFetchStride = 8192;

// --- LZ77 decoder unit (Section 5.2) --------------------------------------

/** Literal copy width (bytes/cycle) through the LZ77 writer. */
inline constexpr double kLitCopyBytesPerCycle = 20.0;

/** Match copy width (bytes/cycle) from the history SRAM. */
inline constexpr double kMatchCopyBytesPerCycle = 15.0;

/** Per-element tag decode cost (cycles). */
inline constexpr double kElementDecodeCycles = 0.88;

/** Outstanding off-chip history reads the decoder sustains: the
 *  sequence stream is decoded ahead of the writer, so a few fallback
 *  fetches overlap; each exposes 1/overlap of its latency. */
inline constexpr double kFallbackOverlap = 8.0;

// --- LZ77 encoder unit (Section 5.5) --------------------------------------

/** Input positions hashed per cycle by the hash-matcher pipeline. */
inline constexpr double kHashPositionsPerCycle = 4.4;

/** Candidate verifications per cycle (byte-compare units). */
inline constexpr double kProbeChecksPerCycle = 4.0;

/** Match-extension compare width (bytes/cycle). */
inline constexpr double kMatchExtendBytesPerCycle = 16.0;

/** Literal emission width (bytes/cycle) on the encode path. */
inline constexpr double kLitEmitBytesPerCycle = 16.0;

// --- Huffman expander (Section 5.3) ---------------------------------------

/** Speculative decode: `speculations` table lookups are issued per
 *  cycle at consecutive bit offsets; on average window /
 *  avg-code-length symbols commit, up to the writeback width. The
 *  sublinear exponent models wasted speculations (lookups landing
 *  mid-code) growing with window width (z15-style, Section 6.4). */
inline constexpr double kHuffCommitWidthCap = 16.0;
inline constexpr double kHuffSpecExponent = 0.8;

/** Fraction of speculative lookups that survive bank conflicts and
 *  commit-port limits; scales the committed rate down uniformly. */
inline constexpr double kHuffLaneEfficiency = 0.29;

/** Decode-table build: entries filled per cycle. */
inline constexpr double kHuffTableFillPerCycle = 4.0;

// --- Huffman compressor (Section 5.6) --------------------------------------

/** Encode width (symbols/cycle) once the dictionary is built. */
inline constexpr double kHuffEncodeSymbolsPerCycle = 4.0;

// --- FSE units (Sections 5.4 and 5.7) ---------------------------------------

/** Sequences decoded per cycle (three parallel table readers). */
inline constexpr double kFseSequencesPerCycle = 2.0;

/** FSE encode width (sequences/cycle, three parallel encoders). */
inline constexpr double kFseEncodeSequencesPerCycle = 1.0;

/** Table spread/build fill rate (entries/cycle). */
inline constexpr double kFseTableFillPerCycle = 2.0;

// --- Entropy-stage block overheads -----------------------------------------

/** Per-block control cost in the ZStd paths (header parse, unit
 *  handoff, context switch between literals and sequences stages). */
inline constexpr u64 kZstdBlockOverheadCycles = 160;

} // namespace cdpu::hw

#endif // CDPU_CDPU_CALIBRATION_H_
