#include "cdpu/cdpu_config.h"

#include <cstdio>

namespace cdpu::hw
{

std::string
CdpuConfig::label() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s/%zuK/ht%u",
                  sim::placementName(placement).c_str(),
                  historySramBytes / kKiB, hashTable.log2Entries);
    return buf;
}

} // namespace cdpu::hw
