/**
 * @file
 * Complete ZStd compression/decompression processing units (Figures 9
 * and 10, ZStd paths): functional ZstdLite codec + cycle model over
 * the LZ77, Huffman, and FSE unit models.
 */

#ifndef CDPU_CDPU_ZSTD_PU_H_
#define CDPU_CDPU_ZSTD_PU_H_

#include "cdpu/cdpu_config.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "sim/memory_hierarchy.h"
#include "sim/tlb.h"
#include "zstdlite/compress.h"
#include "zstdlite/decompress.h"

namespace cdpu::hw
{

/** ZStd decompressor PU. */
class ZstdDecompressorPU
{
  public:
    explicit ZstdDecompressorPU(const CdpuConfig &config);

    /** Full run: functional decode + cycle model. */
    Result<PuResult> run(ByteSpan compressed, Bytes *output = nullptr);

    /**
     * Cycle model only, replaying a trace captured by a previous
     * functional decode. Sweeps use this so each suite file is decoded
     * once, not once per configuration.
     */
    PuResult runFromTrace(const zstdlite::FileTrace &trace,
                          std::size_t compressed_bytes);

    void attachTrace(obs::TraceSession *session) { trace_ = session; }
    obs::CounterSnapshot counters() const { return registry_.snapshot(); }

  private:
    CdpuConfig config_;
    sim::PlacementModel model_;
    sim::MemoryHierarchy memory_;
    sim::Tlb tlb_;
    obs::CounterRegistry registry_;
    obs::TraceSession *trace_ = nullptr;
    u64 calls_ = 0;
    bool builtPredefined_ = false;
};

/** ZStd compressor PU. */
class ZstdCompressorPU
{
  public:
    explicit ZstdCompressorPU(const CdpuConfig &config);

    /**
     * Compresses @p input with hardware parameters: the LZ77 encoder
     * block is reused from the Snappy compressor (Section 6.5), so the
     * match finder runs with the Snappy-style hash and a window equal
     * to the history SRAM.
     */
    Result<PuResult> run(ByteSpan input, Bytes *output = nullptr);

    void attachTrace(obs::TraceSession *session) { trace_ = session; }
    obs::CounterSnapshot counters() const { return registry_.snapshot(); }

  private:
    CdpuConfig config_;
    sim::PlacementModel model_;
    sim::MemoryHierarchy memory_;
    sim::Tlb tlb_;
    obs::CounterRegistry registry_;
    obs::TraceSession *trace_ = nullptr;
    u64 calls_ = 0;
};

} // namespace cdpu::hw

#endif // CDPU_CDPU_ZSTD_PU_H_
