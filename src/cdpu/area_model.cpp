#include "cdpu/area_model.h"

namespace cdpu::hw
{

namespace
{

// Solved from the anchors in the header comment.
constexpr double kSramMm2PerKiB = 0.002645;      // Fig 11: 38% @ 62 KiB
constexpr double kHashMm2PerKiB = 0.003125;      // Fig 13: 2^14 -> 0.40
constexpr double kHashEntryBytes = 8.0;          // tag + position

// Per-unit logic blocks.
constexpr double kLz77DecoderLogic = 0.262;      // 0.431 - 64K SRAM
constexpr double kLz77EncoderLogic = 0.280;
constexpr double kHuffExpanderBase = 0.345;
constexpr double kHuffExpanderPerSpec = 0.0195;
constexpr double kFseExpanderLogic = 0.455;
constexpr double kZstdDecompControl = 0.350;
constexpr double kHuffCompressorLogic = 0.750;
constexpr double kFseCompressorLogic = 1.500;    // 3 dict builders + enc
constexpr double kZstdCompControl = 0.380;

} // namespace

double
sramAreaMm2(std::size_t bytes)
{
    return kSramMm2PerKiB * static_cast<double>(bytes) / kKiB;
}

double
hashTableAreaMm2(const lz77::HashTableConfig &config)
{
    double bytes = static_cast<double>(config.entries()) * config.ways *
                   kHashEntryBytes;
    return kHashMm2PerKiB * bytes / kKiB;
}

double
huffmanExpanderAreaMm2(unsigned speculations)
{
    return kHuffExpanderBase + kHuffExpanderPerSpec * speculations;
}

double
snappyDecompressorAreaMm2(const CdpuConfig &config)
{
    return kLz77DecoderLogic + sramAreaMm2(config.historySramBytes);
}

double
snappyCompressorAreaMm2(const CdpuConfig &config)
{
    return kLz77EncoderLogic + sramAreaMm2(config.historySramBytes) +
           hashTableAreaMm2(config.hashTable);
}

double
zstdDecompressorAreaMm2(const CdpuConfig &config)
{
    return kLz77DecoderLogic + sramAreaMm2(config.historySramBytes) +
           huffmanExpanderAreaMm2(config.huffSpeculations) +
           kFseExpanderLogic + kZstdDecompControl;
}

double
zstdCompressorAreaMm2(const CdpuConfig &config)
{
    return kLz77EncoderLogic + sramAreaMm2(config.historySramBytes) +
           hashTableAreaMm2(config.hashTable) + kHuffCompressorLogic +
           kFseCompressorLogic + kZstdCompControl;
}

double
flateDecompressorAreaMm2(const CdpuConfig &config)
{
    // ZStd decompressor minus the FSE expander, with lighter control.
    return kLz77DecoderLogic + sramAreaMm2(config.historySramBytes) +
           huffmanExpanderAreaMm2(config.huffSpeculations) +
           kZstdDecompControl * 0.6;
}

double
flateCompressorAreaMm2(const CdpuConfig &config)
{
    // ZStd compressor minus the three FSE dictionary builders.
    return kLz77EncoderLogic + sramAreaMm2(config.historySramBytes) +
           hashTableAreaMm2(config.hashTable) + kHuffCompressorLogic +
           kZstdCompControl * 0.6;
}

} // namespace cdpu::hw
