/**
 * @file
 * Cycle models of the Huffman expander (Section 5.3) and the Huffman
 * compressor (Section 5.6).
 *
 * Huffman decoding is serial in the bit stream; the expander issues
 * speculative decode-table lookups at `speculations` consecutive bit
 * offsets per cycle (the z15-style scheme the paper adopts), so the
 * committed symbol rate scales with the speculation window divided by
 * the stream's average code length.
 */

#ifndef CDPU_CDPU_HUFFMAN_UNITS_H_
#define CDPU_CDPU_HUFFMAN_UNITS_H_

#include "cdpu/cdpu_config.h"

namespace cdpu::hw
{

/** Huffman expander: table build + speculative decode cycles. */
class HuffmanExpanderUnit
{
  public:
    explicit HuffmanExpanderUnit(const CdpuConfig &config)
        : config_(config)
    {}

    /** Cycles to build the decode table (256-entry length scan plus
     *  2^maxBits-entry table fill). */
    u64 tableBuildCycles() const;

    /**
     * Cycles to decode @p symbol_count symbols from a stream of
     * @p stream_bytes bytes (their ratio gives the average code
     * length, which sets the committed symbols per cycle).
     */
    u64 decodeCycles(std::size_t symbol_count,
                     std::size_t stream_bytes) const;

    /** Committed symbols per cycle at this speculation width. */
    double commitRate(double avg_code_bits) const;

  private:
    CdpuConfig config_;
};

/** Huffman compressor: stats pass + dictionary build + encode pass. */
class HuffmanCompressorUnit
{
  public:
    explicit HuffmanCompressorUnit(const CdpuConfig &config)
        : config_(config)
    {}

    /** Cycles for the symbol-statistics collection pass. */
    u64 statsCycles(std::size_t symbol_count) const;

    /** Cycles to build the code table (sort + canonical assign). */
    u64 dictBuildCycles() const;

    /** Cycles for the encode pass. */
    u64 encodeCycles(std::size_t symbol_count) const;

  private:
    CdpuConfig config_;
};

} // namespace cdpu::hw

#endif // CDPU_CDPU_HUFFMAN_UNITS_H_
