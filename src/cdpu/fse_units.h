/**
 * @file
 * Cycle models of the FSE expander (Section 5.4) and FSE compressor
 * (Section 5.7).
 *
 * The expander builds decode tables from transmitted normalized counts
 * and then walks the three interleaved state machines; the compressor
 * runs three dictionary builders fed by the SeqToCode converter and an
 * encoder that drains them.
 */

#ifndef CDPU_CDPU_FSE_UNITS_H_
#define CDPU_CDPU_FSE_UNITS_H_

#include "cdpu/cdpu_config.h"

namespace cdpu::hw
{

/** FSE expander: table build + sequence decode cycles. */
class FseExpanderUnit
{
  public:
    explicit FseExpanderUnit(const CdpuConfig &config) : config_(config)
    {}

    /** Cycles to build the three decode tables for one block.
     *  @p dynamic selects transmitted tables (bigger, rebuilt per
     *  block) vs predefined ones (built once, then cached). */
    u64 tableBuildCycles(bool dynamic, bool first_block) const;

    /** Cycles to decode @p num_sequences through the three readers. */
    u64 decodeCycles(std::size_t num_sequences) const;

  private:
    CdpuConfig config_;
};

/** FSE compressor: three dict builders + encoder. */
class FseCompressorUnit
{
  public:
    explicit FseCompressorUnit(const CdpuConfig &config)
        : config_(config)
    {}

    /** Cycles for statistics collection over @p num_sequences (the
     *  three builders run in parallel on the SeqToCode stream). */
    u64 statsCycles(std::size_t num_sequences) const;

    /** Cycles to normalize counts and fill the encode tables. */
    u64 tableBuildCycles() const;

    /** Cycles to encode @p num_sequences. */
    u64 encodeCycles(std::size_t num_sequences) const;

  private:
    CdpuConfig config_;
};

} // namespace cdpu::hw

#endif // CDPU_CDPU_FSE_UNITS_H_
