/**
 * @file
 * Cycle model of the LZ77 encoder unit (Section 5.5): hash matcher +
 * literal/length injector.
 *
 * Compression history checking is necessarily serial (Section 6.3), so
 * there is no off-chip fallback here: offsets beyond the history SRAM
 * are simply not found, which costs compression ratio, not cycles —
 * the functional side enforces that by running the shared match finder
 * with the hardware window/hash geometry.
 */

#ifndef CDPU_CDPU_LZ77_ENCODER_UNIT_H_
#define CDPU_CDPU_LZ77_ENCODER_UNIT_H_

#include "cdpu/cdpu_config.h"
#include "lz77/match_finder.h"

namespace cdpu::hw
{

/** Converts a parse's work counters into encode-pipeline cycles. */
class Lz77EncoderUnit
{
  public:
    explicit Lz77EncoderUnit(const CdpuConfig &config) : config_(config)
    {}

    /**
     * Cycles to run the hash-match pipeline over one parsed buffer of
     * @p input_bytes bytes. The streaming hash stage touches every
     * input position regardless of match structure (which is why
     * Figure 12's speedup barely moves with history size); probe
     * verifications and match extension add data-dependent work.
     */
    u64 cycles(const lz77::MatchFinderStats &stats,
               std::size_t input_bytes) const;

  private:
    const CdpuConfig &config_;
};

} // namespace cdpu::hw

#endif // CDPU_CDPU_LZ77_ENCODER_UNIT_H_
