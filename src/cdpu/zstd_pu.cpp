#include "cdpu/zstd_pu.h"

#include <algorithm>
#include <cmath>

#include "cdpu/call_assembly.h"
#include "cdpu/calibration.h"
#include "cdpu/fse_units.h"
#include "cdpu/huffman_units.h"
#include "cdpu/lz77_decoder_unit.h"
#include "cdpu/lz77_encoder_unit.h"
#include "common/histogram.h"
#include "sim/stream_model.h"

namespace cdpu::hw
{

ZstdDecompressorPU::ZstdDecompressorPU(const CdpuConfig &config)
    : config_(config),
      model_(sim::placementModel(config.placement, config.clockGhz)),
      memory_(), tlb_(config.tlbEntries)
{}

Result<PuResult>
ZstdDecompressorPU::run(ByteSpan compressed, Bytes *output)
{
    zstdlite::FileTrace trace;
    auto decoded = zstdlite::decompress(compressed, &trace);
    if (!decoded.ok())
        return decoded.status();
    if (output)
        *output = std::move(decoded).value();
    return runFromTrace(trace, compressed.size());
}

PuResult
ZstdDecompressorPU::runFromTrace(const zstdlite::FileTrace &trace,
                                 std::size_t compressed_bytes)
{
    HuffmanExpanderUnit huff(config_);
    FseExpanderUnit fse(config_);
    Lz77DecoderUnit lz77(config_, memory_);

    u64 compute = 0;
    for (const auto &block : trace.blocks) {
        if (block.type != zstdlite::BlockType::compressed) {
            // Raw/RLE blocks stream straight through the writer.
            lz77.literal(block.regenSize);
            continue;
        }

        u64 builds = 0;
        u64 lit_decode;
        if (block.literalsMode == zstdlite::LiteralsMode::huffman) {
            builds += huff.tableBuildCycles();
            lit_decode = huff.decodeCycles(block.litCount,
                                           block.litStreamBytes);
        } else {
            lit_decode = static_cast<u64>(std::ceil(
                static_cast<double>(block.litCount) /
                kLitCopyBytesPerCycle));
        }
        if (block.numSequences > 0) {
            builds += fse.tableBuildCycles(block.dynamicTables,
                                           !builtPredefined_);
            if (!block.dynamicTables)
                builtPredefined_ = true;
        }
        u64 seq_decode = fse.decodeCycles(block.numSequences);

        // LZ77 replay through the history SRAM / fallback path.
        u64 replay_before = lz77.cycles();
        std::size_t lit_cursor = 0;
        for (const auto &seq : block.sequences) {
            lz77.sequence(seq.literalLength, seq.matchLength,
                          seq.offset);
            lit_cursor += seq.literalLength;
        }
        std::size_t tail = block.litCount - lit_cursor;
        lz77.literal(tail);
        u64 replay = lz77.cycles() - replay_before;

        // Block stages serialize through the literal buffer: the
        // writer cannot finish before the expander has produced the
        // block's literals, and table builds precede both.
        compute += builds + kZstdBlockOverheadCycles + lit_decode +
                   seq_decode + replay;
    }

    CallShape shape;
    shape.computeCycles = compute;
    shape.inBytes = compressed_bytes;
    shape.outBytes = trace.contentSize;
    shape.serializedStreamBytes = compressed_bytes;
    shape.callSequence = calls_++;
    shape.historyFallbacks = lz77.fallbacks();
    shape.fallbackCycles = lz77.fallbackCycles();
    return assembleCall(config_, model_, memory_, tlb_, shape,
                        registry_, trace_, "zstd_decomp");
}

ZstdCompressorPU::ZstdCompressorPU(const CdpuConfig &config)
    : config_(config),
      model_(sim::placementModel(config.placement, config.clockGhz)),
      memory_(), tlb_(config.tlbEntries)
{}

Result<PuResult>
ZstdCompressorPU::run(ByteSpan input, Bytes *output)
{
    // Window limited to the history SRAM; LZ77 encoder reused from the
    // Snappy compressor, hence Snappy-style hash and greedy parse
    // (the paper's stated reason its ZStd ratio trails software).
    zstdlite::CompressorConfig codec_config;
    codec_config.level = 3;
    codec_config.windowLog = std::clamp<unsigned>(
        floorLog2(std::max<std::size_t>(config_.historySramBytes, 1)),
        zstdlite::kMinWindowLog, zstdlite::kMaxWindowLog);
    codec_config.overrideMatchFinder = true;
    codec_config.matchFinderOverride = config_.hashTable;
    codec_config.skipAccelerationOverride = false;

    zstdlite::FileTrace trace;
    lz77::MatchFinderStats stats;
    auto compressed =
        zstdlite::compress(input, codec_config, &trace, &stats);
    if (!compressed.ok())
        return compressed.status();

    Lz77EncoderUnit lz77(config_);
    HuffmanCompressorUnit huff(config_);
    FseCompressorUnit fse(config_);

    u64 entropy = 0;
    for (const auto &block : trace.blocks) {
        if (block.type != zstdlite::BlockType::compressed)
            continue;
        entropy += kZstdBlockOverheadCycles;
        if (block.literalsMode == zstdlite::LiteralsMode::huffman) {
            entropy += huff.statsCycles(block.litCount) +
                       huff.dictBuildCycles() +
                       huff.encodeCycles(block.litCount);
        }
        if (block.numSequences > 0) {
            entropy += fse.statsCycles(block.numSequences) +
                       fse.tableBuildCycles() +
                       fse.encodeCycles(block.numSequences);
        }
    }

    // The Huffman stage needs two passes per block, so the LZ77
    // output is buffered and the stages serialize (Figure 10's PQ).
    u64 compute = lz77.cycles(stats, input.size()) + entropy;
    CallShape shape;
    shape.computeCycles = compute;
    shape.inBytes = input.size();
    shape.outBytes = compressed.value().size();
    shape.callSequence = calls_++;
    PuResult result = assembleCall(config_, model_, memory_, tlb_,
                                   shape, registry_, trace_,
                                   "zstd_comp");
    if (output)
        *output = std::move(compressed).value();
    return result;
}

} // namespace cdpu::hw
