/**
 * @file
 * Analytic 16 nm silicon-area model for generated CDPU instances.
 *
 * Substitutes the paper's ASIC synthesis flow (DESIGN.md §2 item 3).
 * Constants are solved from the paper's published anchor points:
 *
 *   Snappy decompressor, 64 KiB history          : 0.431 mm^2
 *   Snappy decompressor, 2 KiB history           : 62% of the above
 *   Snappy compressor, 64K hist + 2^14 entries   : 0.851 mm^2
 *   Snappy compressor, 2K hist + 2^9 entries     : 34% of the above
 *   ZStd decompressor, 64K hist, 16 speculations : 1.9 mm^2
 *   ZStd decompressor, 2K history                : -8.6% vs 64K
 *   ZStd decompressor, 32/4 speculations         : +18% / -10%
 *   ZStd compressor, 64K hist + 2^14 entries     : 3.48 mm^2
 *   Snappy C+D pair ~1.3 mm^2, ZStd pair ~5.7 mm^2 (Section 7)
 *
 * The derived decomposition: plain history SRAM at ~0.00264 mm^2/KiB,
 * hash-table storage (8-byte tag+position entries, multi-ported) at a
 * slightly higher per-KiB cost, per-unit logic blocks as fixed
 * constants, and the Huffman expander scaling near-linearly with its
 * speculation count.
 */

#ifndef CDPU_CDPU_AREA_MODEL_H_
#define CDPU_CDPU_AREA_MODEL_H_

#include "cdpu/cdpu_config.h"

namespace cdpu::hw
{

/** Area of a plain single-port SRAM macro. */
double sramAreaMm2(std::size_t bytes);

/** Area of the match-finder hash table (entries x ways, ~8B each,
 *  multi-ported). */
double hashTableAreaMm2(const lz77::HashTableConfig &config);

/** Area of the Huffman expander at a given speculation width. */
double huffmanExpanderAreaMm2(unsigned speculations);

/** Complete single-pipeline instances (Figures 11/12/14/15). */
double snappyDecompressorAreaMm2(const CdpuConfig &config);
double snappyCompressorAreaMm2(const CdpuConfig &config);
double zstdDecompressorAreaMm2(const CdpuConfig &config);
double zstdCompressorAreaMm2(const CdpuConfig &config);

/** Flate instances: the ZStd pipelines minus their FSE blocks
 *  (Section 3.4's unit-reuse argument; see cdpu/flate_pu.h). */
double flateDecompressorAreaMm2(const CdpuConfig &config);
double flateCompressorAreaMm2(const CdpuConfig &config);

/** Reference: one Skylake-class Xeon core tile (the paper cites
 *  17.98 mm^2 in 14 nm [63]); used for the "% of a Xeon core" rows. */
inline constexpr double kXeonCoreTileMm2 = 17.98;

} // namespace cdpu::hw

#endif // CDPU_CDPU_AREA_MODEL_H_
