/**
 * @file
 * Complete Snappy compression/decompression processing units
 * (Figures 9 and 10, Snappy paths): functional codec + cycle model.
 *
 * Both PUs perform the real transformation — the decompressor verifies
 * and produces the actual output, the compressor emits real Snappy
 * bytes with the hardware's window/hash geometry — while accounting
 * cycles through the unit models, the streaming model, and the
 * placement link.
 */

#ifndef CDPU_CDPU_SNAPPY_PU_H_
#define CDPU_CDPU_SNAPPY_PU_H_

#include "cdpu/cdpu_config.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "sim/memory_hierarchy.h"
#include "sim/tlb.h"
#include "snappy/compress.h"
#include "snappy/decompress.h"

namespace cdpu::hw
{

/** Snappy decompressor PU (Figure 9 with Snappy control). */
class SnappyDecompressorPU
{
  public:
    explicit SnappyDecompressorPU(const CdpuConfig &config);

    /**
     * Decompresses @p compressed; returns output + cycle accounting.
     * Corrupt input fails exactly like the software decoder.
     */
    Result<PuResult> run(ByteSpan compressed, Bytes *output = nullptr);

    const sim::MemoryHierarchy &memory() const { return memory_; }

    /** Mirrors every call's phases into @p session (nullptr detaches).
     *  The session must outlive this PU or be detached first. */
    void attachTrace(obs::TraceSession *session) { trace_ = session; }

    /** Cumulative counters across every call on this PU. */
    obs::CounterSnapshot counters() const { return registry_.snapshot(); }

  private:
    CdpuConfig config_;
    sim::PlacementModel model_;
    sim::MemoryHierarchy memory_;
    sim::Tlb tlb_;
    obs::CounterRegistry registry_;
    obs::TraceSession *trace_ = nullptr;
    u64 calls_ = 0;
};

/** Snappy compressor PU (Figure 10 with Snappy control). */
class SnappyCompressorPU
{
  public:
    explicit SnappyCompressorPU(const CdpuConfig &config);

    /** Compresses @p input with hardware parameters. */
    Result<PuResult> run(ByteSpan input, Bytes *output = nullptr);

    void attachTrace(obs::TraceSession *session) { trace_ = session; }
    obs::CounterSnapshot counters() const { return registry_.snapshot(); }

  private:
    CdpuConfig config_;
    sim::PlacementModel model_;
    sim::MemoryHierarchy memory_;
    sim::Tlb tlb_;
    obs::CounterRegistry registry_;
    obs::TraceSession *trace_ = nullptr;
    u64 calls_ = 0;
};

} // namespace cdpu::hw

#endif // CDPU_CDPU_SNAPPY_PU_H_
