#include "cdpu/call_assembly.h"

#include <algorithm>
#include <string>

#include "cdpu/calibration.h"
#include "sim/stream_model.h"

namespace cdpu::hw
{

namespace
{

/** Lane assignment for the per-call trace (Figure 9's pipeline). */
enum TraceTrack : u32
{
    kTrackCall = 0,
    kTrackFetch = 1,
    kTrackCompute = 2,
    kTrackWriteback = 3,
};

} // namespace

PuResult
assembleCall(const CdpuConfig &config, const sim::PlacementModel &model,
             sim::MemoryHierarchy &memory, sim::Tlb &tlb,
             const CallShape &shape, obs::CounterRegistry &registry,
             obs::TraceSession *trace, const char *pu_name)
{
    const obs::CounterSnapshot before = registry.snapshot();
    // The trace timeline is the PU's cumulative busy time: calls are
    // laid out back to back, so a whole run reads as one lane-per-stage
    // pipeline diagram.
    const obs::Tick call_start = registry.counter("pu.cycles").value();

    PuResult result;
    result.inputBytes = shape.inBytes;
    result.outputBytes = shape.outBytes;

    const sim::MemoryConfig &mem_config = memory.config();
    const u64 mem_latency = mem_config.l2LatencyCycles;
    const u64 stream_in = sim::streamCyclesAnalytic(
        shape.inBytes, model, mem_config.busBytesPerCycle, mem_latency);
    const u64 stream_out = sim::streamCyclesAnalytic(
        shape.outBytes, model, mem_config.busBytesPerCycle,
        mem_latency);

    // Data-dependent fetches on the compressed stream periodically
    // expose the full round trip (the tag/entropy decoder cannot run
    // ahead of the loader); one stall per kSerialFetchStride bytes.
    u64 stalls = shape.serializedStreamBytes / kSerialFetchStride;
    u64 stall_latency = mem_latency + 2 * model.linkLatencyCycles;
    u64 serial_stall = stalls * stall_latency;

    // Address translation: input and output buffers live in distinct
    // regions; each TLB miss costs a serialized two-level page walk.
    // Buffers are placed at call-unique base addresses so reuse across
    // calls is conservative (no accidental page sharing).
    u64 base = shape.callSequence << 30; // 1 GiB apart per call
    u64 misses =
        tlb.accessRange(0x100000000000ull + base, shape.inBytes) +
        tlb.accessRange(0x200000000000ull + base, shape.outBytes);
    // Page walks go through the host-side PTW in every placement
    // (PCIe DMA windows are translated by the host driver), so the
    // cost does not cross the link.
    u64 ptw_latency = 2 * mem_latency;
    u64 translation = misses * ptw_latency;

    const u64 dispatch = kCallSetupCycles + 2 * model.linkLatencyCycles;
    const u64 overlap =
        std::max({shape.computeCycles, stream_in, stream_out});
    result.cycles = dispatch + overlap + serial_stall + translation;
    (void)config;

    registry.counter("pu.calls").increment();
    registry.counter("pu.cycles").add(result.cycles);
    registry.counter("pu.compute_cycles").add(shape.computeCycles);
    registry.counter("pu.stream_in_cycles").add(stream_in);
    registry.counter("pu.stream_out_cycles").add(stream_out);
    registry.counter("pu.serial_stall_cycles").add(serial_stall);
    registry.counter("pu.translation_cycles").add(translation);
    registry.counter("pu.history_fallbacks")
        .add(shape.historyFallbacks);
    registry.counter("pu.fallback_cycles").add(shape.fallbackCycles);
    registry.counter("pu.input_bytes").add(shape.inBytes);
    registry.counter("pu.output_bytes").add(shape.outBytes);
    // Each serialized stall exposes a link round trip beyond the
    // dispatch round trip every call pays.
    registry.counter("link.crossings").add(2 + 2 * stalls);
    registry.counter("link.latency_cycles")
        .add((2 + 2 * stalls) * model.linkLatencyCycles);
    registry.histogram("pu.call_bytes").record(shape.inBytes);
    registry.histogram("pu.call_cycles").record(result.cycles);
    memory.exportCounters(registry, "mem");
    tlb.exportCounters(registry, "tlb");

    result.counters = registry.snapshot().diff(before);

    if (trace) {
        const std::string name(pu_name);
        trace->setTrackName(kTrackCall, "call");
        trace->setTrackName(kTrackFetch, "fetch");
        trace->setTrackName(kTrackCompute, "compute");
        trace->setTrackName(kTrackWriteback, "writeback");
        trace->span(name + ".call", "call", call_start, result.cycles,
                    kTrackCall);
        trace->span("dispatch", "dispatch", call_start, dispatch,
                    kTrackCall);
        const obs::Tick phase = call_start + dispatch;
        if (stream_in)
            trace->span("fetch", "stream", phase, stream_in,
                        kTrackFetch);
        if (shape.computeCycles)
            trace->span(name + ".compute", "compute", phase,
                        shape.computeCycles, kTrackCompute);
        if (stream_out)
            trace->span("writeback", "stream", phase, stream_out,
                        kTrackWriteback);
        obs::Tick tail = phase + overlap;
        if (serial_stall) {
            trace->span("serial_stalls", "stall", tail, serial_stall,
                        kTrackCall);
            tail += serial_stall;
        }
        if (translation)
            trace->span("page_walks", "tlb", tail, translation,
                        kTrackCall);
    }
    return result;
}

} // namespace cdpu::hw
