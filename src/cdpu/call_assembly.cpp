#include "cdpu/call_assembly.h"

#include <algorithm>

#include "cdpu/calibration.h"
#include "sim/stream_model.h"

namespace cdpu::hw
{

PuResult
assembleCall(const CdpuConfig &config, const sim::PlacementModel &model,
             sim::MemoryHierarchy &memory, sim::Tlb &tlb,
             const CallShape &shape)
{
    PuResult result;
    result.inputBytes = shape.inBytes;
    result.outputBytes = shape.outBytes;
    result.computeCycles = shape.computeCycles;

    const sim::MemoryConfig &mem_config = memory.config();
    const u64 mem_latency = mem_config.l2LatencyCycles;
    result.streamInCycles = sim::streamCyclesAnalytic(
        shape.inBytes, model, mem_config.busBytesPerCycle, mem_latency);
    result.streamOutCycles = sim::streamCyclesAnalytic(
        shape.outBytes, model, mem_config.busBytesPerCycle,
        mem_latency);

    // Data-dependent fetches on the compressed stream periodically
    // expose the full round trip (the tag/entropy decoder cannot run
    // ahead of the loader); one stall per kSerialFetchStride bytes.
    u64 stalls = shape.serializedStreamBytes / kSerialFetchStride;
    u64 stall_latency = mem_latency + 2 * model.linkLatencyCycles;
    result.serialStallCycles = stalls * stall_latency;

    // Address translation: input and output buffers live in distinct
    // regions; each TLB miss costs a serialized two-level page walk.
    // Buffers are placed at call-unique base addresses so reuse across
    // calls is conservative (no accidental page sharing).
    u64 base = shape.callSequence << 30; // 1 GiB apart per call
    u64 misses =
        tlb.accessRange(0x100000000000ull + base, shape.inBytes) +
        tlb.accessRange(0x200000000000ull + base, shape.outBytes);
    // Page walks go through the host-side PTW in every placement
    // (PCIe DMA windows are translated by the host driver), so the
    // cost does not cross the link.
    u64 ptw_latency = 2 * mem_latency;
    result.translationCycles = misses * ptw_latency;
    result.tlbMisses = misses;

    result.cycles = kCallSetupCycles + 2 * model.linkLatencyCycles +
                    std::max({result.computeCycles,
                              result.streamInCycles,
                              result.streamOutCycles}) +
                    result.serialStallCycles +
                    result.translationCycles;
    (void)config;
    return result;
}

} // namespace cdpu::hw
