#include "cdpu/fse_units.h"

#include <algorithm>
#include <cmath>

#include "cdpu/calibration.h"

namespace cdpu::hw
{

u64
FseExpanderUnit::tableBuildCycles(bool dynamic, bool first_block) const
{
    if (!dynamic && !first_block)
        return 0; // predefined tables stay resident in the table SRAM
    double entries = dynamic
                         ? 3.0 * (1u << config_.fseMaxAccuracyLog)
                         : (1u << 6) + (1u << 6) + (1u << 5);
    return static_cast<u64>(
        std::ceil(entries / kFseTableFillPerCycle));
}

u64
FseExpanderUnit::decodeCycles(std::size_t num_sequences) const
{
    return static_cast<u64>(std::ceil(
        static_cast<double>(num_sequences) / kFseSequencesPerCycle));
}

u64
FseCompressorUnit::statsCycles(std::size_t num_sequences) const
{
    return num_sequences / std::max(1u, config_.fseStatBytesPerCycle) +
           1;
}

u64
FseCompressorUnit::tableBuildCycles() const
{
    double entries = 3.0 * (1u << config_.fseMaxAccuracyLog);
    return static_cast<u64>(
        std::ceil(entries / kFseTableFillPerCycle)) +
           256; // normalization pass
}

u64
FseCompressorUnit::encodeCycles(std::size_t num_sequences) const
{
    return static_cast<u64>(
        std::ceil(static_cast<double>(num_sequences) /
                  kFseEncodeSequencesPerCycle));
}

} // namespace cdpu::hw
