#include "transform/transform.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "common/varint.h"

namespace cdpu::transform
{

namespace
{

/** High nibble of every stage header's tag byte; the low nibble is the
 *  StageId. Distinct from all codec magics so a stage frame handed to
 *  the wrong decoder fails fast. */
constexpr u8 kStageTagBase = 0xA0;

/** Literal runs carry up to this many bytes per control byte. */
constexpr std::size_t kRleMaxLiteral = 128;
/** Repeat runs cover 3..130 bytes per two-byte (control, value) unit. */
constexpr std::size_t kRleMinRepeat = 3;
constexpr std::size_t kRleMaxRepeat = 130;
/** Tightest output-per-encoded-byte ratio: a 2-byte repeat unit can
 *  decode to kRleMaxRepeat bytes, so raw <= body * 65 always. */
constexpr std::size_t kRleMaxDecodePerByte = kRleMaxRepeat / 2;

/** Per-block index overhead: varint(blockLen <= 64Ki) + varint(primary
 *  < blockLen), three bytes each. */
constexpr std::size_t kBwtBlockOverhead = 6;

thread_local StageStats g_stats;

std::size_t
stageIndex(StageId stage)
{
    return static_cast<std::size_t>(stage);
}

/** Accumulates wall time into one StageStats cell on scope exit, so
 *  every early-error return in invert() is still attributed. */
class StageTimer
{
  public:
    explicit StageTimer(u64 &cell)
        : cell_(cell), start_(std::chrono::steady_clock::now())
    {}
    ~StageTimer()
    {
        cell_ += static_cast<u64>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count());
    }

    StageTimer(const StageTimer &) = delete;
    StageTimer &operator=(const StageTimer &) = delete;

  private:
    u64 &cell_;
    std::chrono::steady_clock::time_point start_;
};

/** Zig-zag maps the mod-256 difference so small magnitudes of either
 *  sign become small byte values (0, -1, 1, -2, ... -> 0, 1, 2, 3). */
u8
zigzag8(u8 diff)
{
    i32 n = static_cast<i8>(diff);
    return static_cast<u8>((static_cast<u32>(n) << 1) ^
                           static_cast<u32>(n >> 31));
}

u8
unzigzag8(u8 coded)
{
    u32 zz = coded;
    i32 n = static_cast<i32>(zz >> 1) ^ -static_cast<i32>(zz & 1);
    return static_cast<u8>(n);
}

void
deltaApply(ByteSpan input, Bytes &out)
{
    u8 prev = 0;
    for (u8 byte : input) {
        out.push_back(zigzag8(static_cast<u8>(byte - prev)));
        prev = byte;
    }
}

void
deltaInvert(ByteSpan body, Bytes &out)
{
    u8 prev = 0;
    for (u8 coded : body) {
        prev = static_cast<u8>(prev + unzigzag8(coded));
        out.push_back(prev);
    }
}

void
rleApply(ByteSpan input, Bytes &out)
{
    const std::size_t n = input.size();
    std::size_t i = 0;
    std::size_t literal_start = 0;
    auto flushLiterals = [&](std::size_t end) {
        std::size_t pos = literal_start;
        while (pos < end) {
            std::size_t len = std::min(end - pos, kRleMaxLiteral);
            out.push_back(static_cast<u8>(len - 1));
            out.insert(out.end(), input.begin() + pos,
                       input.begin() + pos + len);
            pos += len;
        }
    };
    while (i < n) {
        std::size_t run = 1;
        while (i + run < n && input[i + run] == input[i] &&
               run < kRleMaxRepeat) {
            ++run;
        }
        if (run >= kRleMinRepeat) {
            flushLiterals(i);
            out.push_back(static_cast<u8>(
                0x80 | (run - kRleMinRepeat)));
            out.push_back(input[i]);
            i += run;
            literal_start = i;
        } else {
            i += run;
        }
    }
    flushLiterals(n);
}

Status
rleInvert(ByteSpan body, u64 raw_size, Bytes &out)
{
    std::size_t pos = 0;
    while (pos < body.size()) {
        u8 control = body[pos++];
        if (control & 0x80) {
            std::size_t run = (control & 0x7f) + kRleMinRepeat;
            if (pos >= body.size())
                return Status::corrupt(
                    "rle: repeat run missing value byte");
            if (out.size() + run > raw_size)
                return Status::corrupt(
                    "rle: stream overruns claimed raw size");
            out.insert(out.end(), run, body[pos++]);
        } else {
            std::size_t len = static_cast<std::size_t>(control) + 1;
            if (body.size() - pos < len)
                return Status::corrupt(
                    "rle: literal run truncated");
            if (out.size() + len > raw_size)
                return Status::corrupt(
                    "rle: stream overruns claimed raw size");
            out.insert(out.end(), body.begin() + pos,
                       body.begin() + pos + len);
            pos += len;
        }
    }
    if (out.size() != raw_size)
        return Status::corrupt("rle: stream underruns claimed raw size");
    return Status::okStatus();
}

void
mtfApply(ByteSpan input, Bytes &out)
{
    std::array<u8, 256> table;
    std::iota(table.begin(), table.end(), 0);
    for (u8 byte : input) {
        std::size_t index = 0;
        while (table[index] != byte)
            ++index;
        out.push_back(static_cast<u8>(index));
        std::copy_backward(table.begin(), table.begin() + index,
                           table.begin() + index + 1);
        table[0] = byte;
    }
}

void
mtfInvert(ByteSpan body, Bytes &out)
{
    std::array<u8, 256> table;
    std::iota(table.begin(), table.end(), 0);
    for (u8 index : body) {
        u8 byte = table[index];
        out.push_back(byte);
        std::copy_backward(table.begin(), table.begin() + index,
                           table.begin() + index + 1);
        table[0] = byte;
    }
}

/**
 * Sorts the cyclic rotations of @p block (prefix-doubling with
 * counting sorts, O(n log n) worst case — periodic inputs are the
 * common case for this stage, so a comparison sort's quadratic tie
 * behaviour is not acceptable) and emits the last column plus the row
 * index of the original string. Tied (identical) rotations may land in
 * any relative order; they contribute identical last-column bytes and
 * the primary row is the original string regardless.
 */
void
bwtForward(ByteSpan block, Bytes &last, u32 &primary)
{
    const std::size_t n = block.size();
    last.resize(n);
    primary = 0;
    if (n == 0)
        return;
    if (n == 1) {
        last[0] = block[0];
        return;
    }
    std::vector<u32> p(n), c(n), pn(n), cn(n);
    std::vector<u32> cnt(256, 0);
    for (std::size_t i = 0; i < n; ++i)
        cnt[block[i]]++;
    for (std::size_t i = 1; i < 256; ++i)
        cnt[i] += cnt[i - 1];
    for (std::size_t i = n; i-- > 0;)
        p[--cnt[block[i]]] = static_cast<u32>(i);
    c[p[0]] = 0;
    u32 classes = 1;
    for (std::size_t i = 1; i < n; ++i) {
        if (block[p[i]] != block[p[i - 1]])
            ++classes;
        c[p[i]] = classes - 1;
    }
    for (std::size_t h = 1; h < n && classes < n; h <<= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            pn[i] = p[i] >= h ? p[i] - static_cast<u32>(h)
                              : static_cast<u32>(p[i] + n - h);
        }
        cnt.assign(classes, 0);
        for (std::size_t i = 0; i < n; ++i)
            cnt[c[pn[i]]]++;
        for (std::size_t i = 1; i < classes; ++i)
            cnt[i] += cnt[i - 1];
        for (std::size_t i = n; i-- > 0;)
            p[--cnt[c[pn[i]]]] = pn[i];
        cn[p[0]] = 0;
        u32 next_classes = 1;
        for (std::size_t i = 1; i < n; ++i) {
            std::size_t mid_a = (p[i] + h) % n;
            std::size_t mid_b = (p[i - 1] + h) % n;
            if (c[p[i]] != c[p[i - 1]] || c[mid_a] != c[mid_b])
                ++next_classes;
            cn[p[i]] = next_classes - 1;
        }
        c.swap(cn);
        classes = next_classes;
    }
    for (std::size_t i = 0; i < n; ++i) {
        last[i] = block[(p[i] + n - 1) % n];
        if (p[i] == 0)
            primary = static_cast<u32>(i);
    }
}

/** LF-mapping backward reconstruction; appends the block to @p out. */
void
bwtInvertBlock(ByteSpan last, u32 primary, Bytes &out)
{
    const std::size_t n = last.size();
    std::array<u32, 256> freq{};
    for (u8 byte : last)
        freq[byte]++;
    std::array<u32, 256> starts{};
    u32 sum = 0;
    for (std::size_t s = 0; s < 256; ++s) {
        starts[s] = sum;
        sum += freq[s];
    }
    std::vector<u32> lf(n);
    std::array<u32, 256> seen{};
    for (std::size_t i = 0; i < n; ++i)
        lf[i] = starts[last[i]] + seen[last[i]]++;
    const std::size_t base = out.size();
    out.resize(base + n);
    u32 row = primary;
    for (std::size_t k = n; k-- > 0;) {
        out[base + k] = last[row];
        row = lf[row];
    }
}

void
bwtApply(ByteSpan input, Bytes &out)
{
    Bytes last;
    for (std::size_t pos = 0; pos < input.size();
         pos += kBwtBlockBytes) {
        std::size_t len =
            std::min(kBwtBlockBytes, input.size() - pos);
        u32 primary = 0;
        bwtForward(input.subspan(pos, len), last, primary);
        putVarint(out, len);
        putVarint(out, primary);
        out.insert(out.end(), last.begin(), last.end());
    }
}

Status
bwtInvert(ByteSpan body, u64 raw_size, Bytes &out)
{
    std::size_t pos = 0;
    while (pos < body.size()) {
        Result<u64> len = getVarint(body, pos);
        if (!len.ok())
            return Status::corrupt("bwt: block length truncated");
        Result<u64> primary = getVarint(body, pos);
        if (!primary.ok())
            return Status::corrupt("bwt: primary index truncated");
        u64 block_len = len.value();
        if (block_len == 0 || block_len > kBwtBlockBytes)
            return Status::corrupt("bwt: block length out of range");
        if (primary.value() >= block_len)
            return Status::corrupt("bwt: primary index out of range");
        if (body.size() - pos < block_len)
            return Status::corrupt("bwt: last column truncated");
        if (out.size() + block_len > raw_size)
            return Status::corrupt(
                "bwt: blocks overrun claimed raw size");
        bwtInvertBlock(
            body.subspan(pos, static_cast<std::size_t>(block_len)),
            static_cast<u32>(primary.value()), out);
        pos += static_cast<std::size_t>(block_len);
    }
    if (out.size() != raw_size)
        return Status::corrupt("bwt: blocks underrun claimed raw size");
    return Status::okStatus();
}

/** Fixed record width of the struct-of-arrays shredder. */
constexpr std::size_t kShredRecordBytes = 8;

void
shredApply(ByteSpan input, Bytes &out)
{
    const std::size_t records = input.size() / kShredRecordBytes;
    for (std::size_t plane = 0; plane < kShredRecordBytes; ++plane)
        for (std::size_t r = 0; r < records; ++r)
            out.push_back(input[r * kShredRecordBytes + plane]);
    out.insert(out.end(),
               input.begin() +
                   static_cast<std::ptrdiff_t>(records *
                                               kShredRecordBytes),
               input.end());
}

void
shredInvert(ByteSpan body, Bytes &out)
{
    const std::size_t records = body.size() / kShredRecordBytes;
    out.resize(body.size());
    for (std::size_t plane = 0; plane < kShredRecordBytes; ++plane)
        for (std::size_t r = 0; r < records; ++r)
            out[r * kShredRecordBytes + plane] =
                body[plane * records + r];
    std::copy(body.begin() +
                  static_cast<std::ptrdiff_t>(records *
                                              kShredRecordBytes),
              body.end(),
              out.begin() +
                  static_cast<std::ptrdiff_t>(records *
                                              kShredRecordBytes));
}

} // namespace

const std::vector<StageId> &
allStages()
{
    static const std::vector<StageId> kStages = {
        StageId::delta, StageId::rle, StageId::mtf, StageId::bwt,
        StageId::shred,
    };
    return kStages;
}

std::string
stageName(StageId stage)
{
    switch (stage) {
      case StageId::delta: return "delta";
      case StageId::rle: return "rle";
      case StageId::mtf: return "mtf";
      case StageId::bwt: return "bwt";
      case StageId::shred: return "shred";
    }
    return "unknown";
}

Result<StageId>
stageFromName(const std::string &name)
{
    for (StageId stage : allStages()) {
        if (stageName(stage) == name)
            return stage;
    }
    return Status::invalid("unknown transform stage \"" + name + "\"");
}

StageExpansion
stageExpansion(StageId stage)
{
    // Body bounds plus the worst-case framed header (tag byte + up to
    // a 10-byte varint raw size) folded into slop, so a pipeline's
    // multiplied caps bound covers the full stage frame.
    switch (stage) {
      case StageId::delta:
      case StageId::mtf:
      case StageId::shred: return {1, 1, 11};
      case StageId::rle: return {129, 128, 12};
      case StageId::bwt:
        return {kBwtBlockBytes + kBwtBlockOverhead, kBwtBlockBytes,
                kBwtBlockOverhead + 11};
    }
    return {1, 1, 11};
}

std::size_t
maxEncodedSize(StageId stage, std::size_t raw_size)
{
    std::size_t header = 1 + varintSize(raw_size);
    switch (stage) {
      case StageId::delta:
      case StageId::mtf:
      case StageId::shred: return header + raw_size;
      case StageId::rle:
        return header + raw_size + raw_size / kRleMaxLiteral + 1;
      case StageId::bwt: {
        std::size_t blocks =
            (raw_size + kBwtBlockBytes - 1) / kBwtBlockBytes;
        return header + raw_size + blocks * kBwtBlockOverhead;
      }
    }
    return header + raw_size;
}

Status
apply(StageId stage, ByteSpan input, Bytes &out)
{
    StageTimer timer(g_stats.applyNs[stageIndex(stage)]);
    g_stats.applyBytes[stageIndex(stage)] += input.size();
    out.clear();
    out.reserve(maxEncodedSize(stage, input.size()));
    out.push_back(static_cast<u8>(kStageTagBase |
                                  static_cast<u8>(stage)));
    putVarint(out, input.size());
    switch (stage) {
      case StageId::delta: deltaApply(input, out); break;
      case StageId::rle: rleApply(input, out); break;
      case StageId::mtf: mtfApply(input, out); break;
      case StageId::bwt: bwtApply(input, out); break;
      case StageId::shred: shredApply(input, out); break;
    }
    return Status::okStatus();
}

Status
invert(StageId stage, ByteSpan input, Bytes &out)
{
    StageTimer timer(g_stats.invertNs[stageIndex(stage)]);
    out.clear();
    if (input.empty())
        return Status::corrupt("transform: empty stage frame");
    u8 expected = static_cast<u8>(kStageTagBase |
                                  static_cast<u8>(stage));
    if (input[0] != expected)
        return Status::corrupt(
            "transform: stage tag mismatch (want " +
            stageName(stage) + ")");
    std::size_t pos = 1;
    Result<u64> raw = getVarint(input, pos);
    if (!raw.ok())
        return Status::corrupt("transform: raw size truncated");
    u64 raw_size = raw.value();
    ByteSpan body = input.subspan(pos);
    // Allocation guard: reject any claimed size the body cannot
    // plausibly decode to before reserving a byte.
    switch (stage) {
      case StageId::delta:
      case StageId::mtf:
      case StageId::shred:
        if (raw_size != body.size())
            return Status::corrupt(
                "transform: body size does not match claimed raw "
                "size");
        break;
      case StageId::rle:
        if (raw_size >
            static_cast<u64>(body.size()) * kRleMaxDecodePerByte)
            return Status::corrupt(
                "rle: claimed raw size exceeds decode bound");
        break;
      case StageId::bwt:
        if (raw_size > body.size())
            return Status::corrupt(
                "bwt: claimed raw size exceeds body size");
        break;
    }
    out.reserve(static_cast<std::size_t>(raw_size));
    Status status;
    switch (stage) {
      case StageId::delta: deltaInvert(body, out); break;
      case StageId::rle: status = rleInvert(body, raw_size, out); break;
      case StageId::mtf: mtfInvert(body, out); break;
      case StageId::bwt: status = bwtInvert(body, raw_size, out); break;
      case StageId::shred: shredInvert(body, out); break;
    }
    if (status.ok())
        g_stats.invertBytes[stageIndex(stage)] += out.size();
    else
        out.clear();
    return status;
}

StageStats
StageStats::diff(const StageStats &before) const
{
    StageStats delta;
    for (std::size_t i = 0; i < kNumStages; ++i) {
        delta.applyNs[i] = applyNs[i] - before.applyNs[i];
        delta.applyBytes[i] = applyBytes[i] - before.applyBytes[i];
        delta.invertNs[i] = invertNs[i] - before.invertNs[i];
        delta.invertBytes[i] = invertBytes[i] - before.invertBytes[i];
    }
    return delta;
}

const StageStats &
stageStats()
{
    return g_stats;
}

} // namespace cdpu::transform
