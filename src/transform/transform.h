/**
 * @file
 * Reversible preconditioner stages for pipeline codecs.
 *
 * tudocomp (PAPERS.md) shows compression pipelines composed from small
 * reversible transforms in front of a terminal coder; the fleet's
 * ratio/speed menu widens the same way here. Each stage maps bytes to
 * bytes with an exact inverse and wraps its output in a tiny framed
 * header (tag byte + varint raw size) so a pipeline decoder can
 * validate what it is about to undo — a tampered stage header is
 * corruptData, never a wild allocation (the claimed size is checked
 * against the body before any reserve).
 *
 * Stages (spec-string names in parentheses, DESIGN.md §15):
 *  - delta ("delta"): byte-wise previous-byte delta, zig-zag mapped so
 *    small +/- differences land on small byte values.
 *  - rle ("rle"): packbits-style run-length coding — literal runs of
 *    up to 128 bytes, repeat runs of 3..130.
 *  - mtf ("mtf"): move-to-front over the 256-byte alphabet.
 *  - bwt ("bwt"): Burrows-Wheeler transform of cyclic rotations,
 *    suffix-array (prefix-doubling) sort, framed in 64 KiB blocks with
 *    a per-block primary index.
 *  - shred ("shred"): struct-of-arrays shredder — fixed 8-byte records
 *    split into per-byte planes (trailing partial record kept raw).
 */

#ifndef CDPU_TRANSFORM_TRANSFORM_H_
#define CDPU_TRANSFORM_TRANSFORM_H_

#include <array>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace cdpu::transform
{

/** Every transform stage. Values are wire tags (low nibble of the
 *  framed header's tag byte), so the order is format-stable. */
enum class StageId : u8
{
    delta = 0,
    rle = 1,
    mtf = 2,
    bwt = 3,
    shred = 4,
};

inline constexpr std::size_t kNumStages = 5;

/** BWT block framing granularity: each block sorts independently, so
 *  decode parallelism and memory stay bounded regardless of input
 *  size. */
inline constexpr std::size_t kBwtBlockBytes = 64 * kKiB;

/** All stages, in enum order. */
const std::vector<StageId> &allStages();

/** Stable lowercase spec-string name ("delta", "rle", ...). */
std::string stageName(StageId stage);

/** Resolves a spec-string token back to its stage. */
Result<StageId> stageFromName(const std::string &name);

/**
 * Analytic expansion bound of one stage in the caps form: encoded
 * size never exceeds raw * num / den + slop. Pipelines multiply these
 * per-stage fractions into their composed CodecCaps (DESIGN.md §15).
 */
struct StageExpansion
{
    u64 num = 1;
    u64 den = 1;
    std::size_t slop = 0;
};

StageExpansion stageExpansion(StageId stage);

/** Exact upper bound on apply()'s output (header included) for
 *  @p raw_size input bytes — the functional form pipelines chain into
 *  their maxCompressedSize. */
std::size_t maxEncodedSize(StageId stage, std::size_t raw_size);

/**
 * Applies @p stage to @p input, replacing @p out with the framed
 * encoding: [tag u8][varint rawSize][body]. Never fails on legal
 * input (any byte string is legal); Status is kept for uniformity
 * with the codec entry points.
 */
Status apply(StageId stage, ByteSpan input, Bytes &out);

/**
 * Inverts a framed stage encoding, replacing @p out with the original
 * bytes. Fails with corruptData when the tag does not match @p stage,
 * the claimed raw size is inconsistent with the body, or the body
 * itself is malformed (BWT primary index out of range, RLE stream
 * over/underrunning its claim). The claimed size is validated against
 * the body's analytic decode bound before any allocation.
 */
Status invert(StageId stage, ByteSpan input, Bytes &out);

/**
 * Per-stage wall-time and byte attribution, thread-local and
 * cumulative like mem::kernelStats(): benches snapshot before the
 * timed loop and diff after, so a pipeline's headline number can be
 * broken down into `transform.<stage>.ns` counters (bench honesty —
 * a pipeline win must be attributable to its stages, not noise).
 */
struct StageStats
{
    std::array<u64, kNumStages> applyNs{};
    std::array<u64, kNumStages> applyBytes{};
    std::array<u64, kNumStages> invertNs{};
    std::array<u64, kNumStages> invertBytes{};

    /** This snapshot minus @p before, field-wise. */
    StageStats diff(const StageStats &before) const;
};

/** The calling thread's cumulative stage stats. */
const StageStats &stageStats();

} // namespace cdpu::transform

#endif // CDPU_TRANSFORM_TRANSFORM_H_
