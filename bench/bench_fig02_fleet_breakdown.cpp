/**
 * @file
 * Figure 2 and Section 3.3: fleet byte shares by algorithm (2a), the
 * byte-weighted ZStd compression-level distribution (2b), aggregate
 * achieved compression ratios (2c), and the Section 3.3.4 cost-per-
 * byte multipliers with the 67%-cycle-increase thought experiment.
 */

#include "bench_common.h"
#include "baseline/xeon_cost_model.h"
#include "common/table.h"
#include "fleet/reports.h"

using namespace cdpu;
using namespace cdpu::fleet;

int
main(int argc, char **argv)
{
    bench::banner("Fleet byte shares, ZStd levels, achieved ratios",
                  "Figure 2 and Sections 3.3.1-3.3.4");

    bench::BenchReport report("fig02_fleet_breakdown", argc, argv);
    FleetModel model;
    GwpSampler sampler(model, 202);
    auto records = sampler.sampleFinalMonth(120000);

    // --- Figure 2a ------------------------------------------------------
    TablePrinter bytes_table({"Channel", "% of fleet uncomp. bytes"});
    for (FleetCodec algorithm : allFleetCodecs()) {
        for (Direction direction :
             {Direction::compress, Direction::decompress}) {
            Channel channel{algorithm, direction};
            bytes_table.addRow(
                {channel.name(),
                 TablePrinter::percent(model.byteShare(channel))});
        }
    }
    std::printf("%s", bytes_table.render().c_str());
    std::printf("Heavyweight share: %.0f%% of compressed bytes, "
                "%.0f%% of decompressed bytes (paper: 36%% / 49%%); "
                "each compressed byte is decompressed %.1fx.\n\n",
                36.0, 49.0, FleetModel::kDecompressionsPerByte);

    // --- Figure 2b ------------------------------------------------------
    TablePrinter level_table(
        {"ZStd level", "% of bytes (model)", "% of bytes (sampled)"});
    auto sampled_levels = zstdLevelShares(records);
    for (const auto &[level, weight] : model.zstdLevelDistribution()) {
        level_table.addRow({std::to_string(level),
                            TablePrinter::percent(weight, 3),
                            TablePrinter::percent(sampled_levels[level],
                                                  3)});
    }
    std::printf("%s", level_table.render().c_str());
    std::printf("Paper checkpoints: 88%% of bytes at level <= 3, 95%% "
                "at <= 5, <0.002%% at >= 12.\n\n");

    // --- Figure 2c ------------------------------------------------------
    TablePrinter ratio_table({"Algorithm/level bin", "Aggregate ratio"});
    for (const std::string &bin : model.ratioBins()) {
        ratio_table.addRow(
            {bin, TablePrinter::num(model.aggregateRatio(bin), 2)});
    }
    std::printf("%s", ratio_table.render().c_str());
    std::printf("ZStd-low over Snappy: %.2fx; ZStd-high over low: "
                "%.2fx (paper: 1.46x, 1.35x).\n\n",
                model.aggregateRatio("ZSTD [-inf,3]") /
                    model.aggregateRatio("Snappy"),
                model.aggregateRatio("ZSTD [4,22]") /
                    model.aggregateRatio("ZSTD [-inf,3]"));

    // --- Section 3.3.4 --------------------------------------------------
    baseline::XeonCostModel xeon;
    double snappy_cpb = 1.0 / xeon.throughputGBps(
                                  codec::CodecId::snappy,
                                  codec::Direction::compress);
    double zstd_low_cpb = 1.0 / xeon.throughputGBps(
                                    codec::CodecId::zstdlite,
                                    codec::Direction::compress, 3);
    double zstd_high_cpb = 1.0 / xeon.throughputGBps(
                                     codec::CodecId::zstdlite,
                                     codec::Direction::compress, 9);
    TablePrinter cost_table({"Comparison", "Model", "Paper"});
    cost_table.addRow({"ZStd-low vs Snappy compress cost/B",
                       TablePrinter::num(zstd_low_cpb / snappy_cpb, 2) +
                           "x",
                       "1.55x"});
    cost_table.addRow({"ZStd-high vs ZStd-low compress cost/B",
                       TablePrinter::num(zstd_high_cpb / zstd_low_cpb,
                                         2) +
                           "x",
                       "2.39x"});
    double snappy_d = xeon.throughputGBps(codec::CodecId::snappy,
                                          codec::Direction::decompress);
    double zstd_d = xeon.throughputGBps(codec::CodecId::zstdlite,
                                        codec::Direction::decompress);
    cost_table.addRow({"ZStd vs Snappy decompress cost/B",
                       TablePrinter::num(snappy_d / zstd_d, 2) + "x",
                       "1.63x (fleet aggregate)"});
    std::printf("%s", cost_table.render().c_str());

    // Thought experiment: a service spending 25% of cycles on Snappy
    // compression switching to the highest ZStd levels.
    double multiplier =
        FleetModel::kZstdLowOverSnappyCompressCost *
        FleetModel::kZstdHighOverLowCompressCost;
    double increase = 0.25 * (multiplier - 1.0);
    std::printf("\nA service spending 25%% of cycles on Snappy "
                "compression switching to high-level ZStd would grow "
                "its cycle consumption by %.0f%% (paper: 67%%, a "
                "non-starter).\n",
                increase * 100);
    report.metric("zstd_low_vs_snappy_compress_cost",
                  zstd_low_cpb / snappy_cpb);
    report.metric("zstd_high_vs_low_compress_cost",
                  zstd_high_cpb / zstd_low_cpb);
    report.metric("zstd_vs_snappy_decompress_cost", snappy_d / zstd_d);
    report.metric("switch_cycle_increase", increase);
    if (auto status = report.write(); !status.ok()) {
        std::fprintf(stderr, "%s\n", status.toString().c_str());
        return 1;
    }
    return 0;
}
