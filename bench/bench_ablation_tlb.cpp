/**
 * @file
 * Ablation: accelerator TLB sizing (Figure 8's TLBs). Sweeps TLB
 * entries for the Snappy decompressor on the fleet-shaped suite —
 * small calls touch few pages, so modest TLBs suffice, but the walk
 * cost is pure overhead on the fleet's many-small-calls profile.
 */

#include "bench_common.h"
#include "bench_dse_common.h"
#include "common/table.h"
#include "dse/figure_tables.h"

using namespace cdpu;

int
main(int argc, char **argv)
{
    bench::banner("Ablation: accelerator TLB entries",
                  "Figure 8 (TLBs / PTW path)");

    fleet::FleetModel fleet;
    hcb::SuiteGenerator generator(
        fleet, bench::suiteConfigFromArgs(argc, argv));
    hcb::Suite suite = generator.generate(
        codec::CodecId::snappy, codec::Direction::decompress);
    dse::SweepRunner runner(suite);

    bench::BenchReport report("ablation_tlb", argc, argv);
    TablePrinter table({"TLB entries", "Speedup vs Xeon"});
    for (unsigned entries : {4u, 8u, 16u, 32u, 64u, 128u}) {
        hw::CdpuConfig config;
        config.tlbEntries = entries;
        dse::DsePoint point = runner.run(config);
        report.metric("speedup_tlb" + std::to_string(entries),
                      point.speedup());
        report.metric("tlb_misses_tlb" + std::to_string(entries),
                      point.counters.at("tlb.misses"));
        table.addRow({std::to_string(entries),
                      TablePrinter::num(point.speedup(), 2) + "x"});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nStreaming accelerators touch pages sequentially, "
                "so even small TLBs capture the locality; the page-"
                "walk cost on cold buffers is the floor.\n");
    return bench::finishReport(report);
}
