/**
 * @file
 * Headline-claims summary (abstract + Section 6.6), the analogue of
 * the artifact's FINAL_TEXT_SUMMARIES.txt: flagship speedups, area
 * fractions of a Xeon core, the 46x speedup range and the ~3x
 * single-pipeline area range, regenerated from this repository's
 * models.
 */

#include <algorithm>

#include "bench_common.h"
#include "bench_dse_common.h"
#include "common/table.h"
#include "dse/figure_tables.h"

using namespace cdpu;
using codec::CodecId;
using Direction = codec::Direction;

int
main(int argc, char **argv)
{
    bench::banner("Headline claims summary",
                  "Abstract, Section 6.6, FINAL_TEXT_SUMMARIES");

    fleet::FleetModel fleet;
    hcb::SuiteConfig suite_config = bench::suiteConfigFromArgs(argc, argv);

    struct Entry
    {
        const char *name;
        CodecId algorithm;
        Direction direction;
        double paperSpeedup;
        double paperAreaMm2;
    };
    const Entry entries[] = {
        {"Snappy decompress", CodecId::snappy, Direction::decompress,
         10.4, 0.431},
        {"Snappy compress", CodecId::snappy, Direction::compress,
         16.2, 0.851},
        {"ZStd decompress", CodecId::zstdlite, Direction::decompress, 4.2,
         1.90},
        {"ZStd compress", CodecId::zstdlite, Direction::compress, 15.8,
         3.48},
    };

    double min_speedup = 1e18;
    double max_speedup = 0;
    bench::BenchReport report("summary_claims", argc, argv);
    report.config("files",
                  static_cast<u64>(suite_config.filesPerSuite));
    report.config("cap_bytes",
                  static_cast<u64>(suite_config.maxFileBytes));
    report.config("seed", suite_config.seed);

    TablePrinter table({"PU (RoCC, 64K, 2^14, 16 spec)", "Speedup",
                        "Paper", "Area mm^2", "Paper", "% Xeon core"});
    for (const Entry &entry : entries) {
        // Fresh generator per suite so each matches its standalone
        // figure bench (generation consumes shared RNG state).
        hcb::SuiteGenerator generator(fleet, suite_config);
        hcb::Suite suite =
            generator.generate(entry.algorithm, entry.direction);
        dse::SweepRunner runner(suite);

        // Track the full exploration's extremes while we are here:
        // every placement x SRAM point, plus the speculation corners
        // for ZStd decompression.
        for (sim::Placement placement : sim::allPlacements()) {
            for (std::size_t sram : dse::sramSweepBytes()) {
                hw::CdpuConfig config;
                config.placement = placement;
                config.historySramBytes = sram;
                double speedup = runner.run(config).speedup();
                min_speedup = std::min(min_speedup, speedup);
                max_speedup = std::max(max_speedup, speedup);
            }
        }
        if (entry.algorithm == CodecId::zstdlite &&
            entry.direction == Direction::decompress) {
            for (unsigned spec : {4u, 32u}) {
                hw::CdpuConfig config;
                config.huffSpeculations = spec;
                double speedup = runner.run(config).speedup();
                min_speedup = std::min(min_speedup, speedup);
                max_speedup = std::max(max_speedup, speedup);
            }
        }

        dse::DsePoint flagship = dse::flagshipPoint(runner);
        std::string key = std::string(entry.name);
        std::replace(key.begin(), key.end(), ' ', '_');
        report.metric(key + "_speedup", flagship.speedup());
        report.metric(key + "_area_mm2", flagship.areaMm2);
        report.counters(flagship.counters);
        table.addRow(
            {entry.name,
             TablePrinter::num(flagship.speedup(), 1) + "x",
             TablePrinter::num(entry.paperSpeedup, 1) + "x",
             TablePrinter::num(flagship.areaMm2, 3),
             TablePrinter::num(entry.paperAreaMm2, 3),
             TablePrinter::percent(flagship.areaMm2 /
                                   hw::kXeonCoreTileMm2)});
    }
    std::printf("%s\n", table.render().c_str());

    // Area range for a single pipeline (Snappy compressor, full vs
    // minimal configuration — the paper's 66% saving, i.e. ~3x).
    hw::CdpuConfig full;
    hw::CdpuConfig tiny;
    tiny.historySramBytes = 2 * kKiB;
    tiny.hashTable.log2Entries = 9;
    double area_range = hw::snappyCompressorAreaMm2(full) /
                        hw::snappyCompressorAreaMm2(tiny);

    std::printf("Design-space ranges: speedups span %.2fx to %.2fx "
                "-> %.0fx range (paper: 46x); the Snappy-compressor "
                "pipeline spans a %.1fx area range (paper: ~3x / 66%% "
                "saving).\n",
                min_speedup, max_speedup, max_speedup / min_speedup,
                area_range);
    std::printf("Final instances are up to 10-16x faster than a "
                "single Xeon core at 2.4-4.7%% of its area "
                "(abstract).\n");

    report.metric("min_speedup", min_speedup);
    report.metric("max_speedup", max_speedup);
    report.metric("speedup_range", max_speedup / min_speedup);
    report.metric("pipeline_area_range", area_range);
    return bench::finishReport(report);
}
