/**
 * @file
 * Telemetry helper shared by the design-space-exploration benches
 * (Figures 11-15, summary, ablations): records the flagship design
 * point's metrics and counters into a BenchReport.
 */

#ifndef CDPU_BENCH_BENCH_DSE_COMMON_H_
#define CDPU_BENCH_BENCH_DSE_COMMON_H_

#include "bench_common.h"
#include "dse/sweep_runner.h"

namespace cdpu::bench
{

/** Fills @p report with one design point's outputs and counters. */
inline void
recordDsePoint(BenchReport &report, const dse::DsePoint &point,
               std::size_t total_bytes)
{
    report.config("flagship", point.config.label());
    report.metric("total_bytes", static_cast<u64>(total_bytes));
    report.metric("throughput_gbps", point.accelGBps(total_bytes));
    report.metric("speedup", point.speedup());
    report.metric("total_cycles", point.accelCycles);
    report.metric("area_mm2", point.areaMm2);
    report.metric("history_fallbacks", point.historyFallbacks);
    if (point.hwRatio > 0) {
        report.metric("hw_ratio", point.hwRatio);
        report.metric("ratio_vs_sw", point.ratioVsSw());
    }
    report.counters(point.counters);
}

/** Writes @p report; prints the error and returns 1 on failure. */
inline int
finishReport(const BenchReport &report)
{
    if (auto status = report.write(); !status.ok()) {
        std::fprintf(stderr, "%s\n", status.toString().c_str());
        return 1;
    }
    return 0;
}

} // namespace cdpu::bench

#endif // CDPU_BENCH_BENCH_DSE_COMMON_H_
