/**
 * @file
 * Figure 4: fleet (de)compression cycles by calling library, sampled
 * vs ground truth, with the Section 3.5.2 file-format aggregation.
 */

#include "bench_common.h"
#include "common/table.h"
#include "fleet/reports.h"

using namespace cdpu;
using namespace cdpu::fleet;

int
main(int argc, char **argv)
{
    bench::banner("(De)compression cycles by calling library",
                  "Figure 4 and Section 3.5.2");

    bench::BenchReport report("fig04_library_mix", argc, argv);
    FleetModel model;
    GwpSampler sampler(model, 404);
    auto records = sampler.sampleFinalMonth(120000);

    TablePrinter table({"Library", "Sampled", "Paper (Fig 4)"});
    double filetype_share = 0;
    for (const auto &row : libraryShares(records, model)) {
        table.addRow({row.label, TablePrinter::percent(row.measured),
                      TablePrinter::percent(row.groundTruth)});
        if (row.label.rfind("Filetype", 0) == 0)
            filetype_share += row.measured;
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("File-format libraries invoke %s of (de)compression "
                "cycles (paper: 49.2%%) — the chaining argument of "
                "Section 3.5.2 for near-core placement.\n",
                TablePrinter::percent(filetype_share).c_str());
    report.metric("filetype_share", filetype_share);
    if (auto status = report.write(); !status.ok()) {
        std::fprintf(stderr, "%s\n", status.toString().c_str());
        return 1;
    }
    return 0;
}
