/**
 * @file
 * Figure 3: cumulative call-size distributions for Snappy/ZStd
 * (de)compression, byte-weighted, reconstructed from sampled records.
 */

#include "bench_common.h"
#include "common/table.h"
#include "fleet/reports.h"

using namespace cdpu;
using namespace cdpu::fleet;

int
main(int argc, char **argv)
{
    bench::banner("Fleet call-size CDFs", "Figure 3 and Section 3.5.1");

    bench::BenchReport report("fig03_call_sizes", argc, argv);
    FleetModel model;
    GwpSampler sampler(model, 303);
    auto records = sampler.sampleFinalMonth(150000);

    std::vector<Channel> channels = {
        {FleetCodec::snappy, Direction::compress},
        {FleetCodec::zstd, Direction::compress},
        {FleetCodec::snappy, Direction::decompress},
        {FleetCodec::zstd, Direction::decompress},
    };

    TablePrinter table({"ceil(lg2(B))", "Snappy-C", "ZSTD-C",
                        "Snappy-D", "ZSTD-D"});
    std::vector<WeightedHistogram> histograms;
    for (const auto &channel : channels)
        histograms.push_back(callSizeHistogram(records, channel));

    for (int bin = 10; bin <= 26; ++bin) {
        std::vector<std::string> row = {std::to_string(bin)};
        for (auto &histogram : histograms) {
            double cum = 0;
            for (const auto &point : histogram.cdf()) {
                if (point.x <= bin)
                    cum = point.cumFraction;
            }
            row.push_back(TablePrinter::percent(cum, 0));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());

    auto median = [&](std::size_t i) {
        return histograms[i].quantile(0.5);
    };
    std::printf("Medians (bin): Snappy-C %.0f, ZSTD-C %.0f, Snappy-D "
                "%.0f, ZSTD-D %.0f\n",
                median(0), median(1), median(2), median(3));
    report.metric("snappy_c_median_bin", median(0));
    report.metric("zstd_c_median_bin", median(1));
    report.metric("snappy_d_median_bin", median(2));
    report.metric("zstd_d_median_bin", median(3));
    std::printf("Paper checkpoints: compression medians in the 64-128 "
                "KiB bin (17) for both algorithms; Snappy-C has 24%% "
                "of bytes <= 32 KiB vs 8%% for ZStd-C; Snappy-D: 62%% "
                "< 128 KiB, 80%% < 256 KiB; ZStd-D median in 1-2 MiB "
                "(21).\n");
    if (auto status = report.write(); !status.ok()) {
        std::fprintf(stderr, "%s\n", status.toString().c_str());
        return 1;
    }
    return 0;
}
