/**
 * @file
 * Daemon serving latency/throughput vs worker count, over the wire.
 *
 * Where bench_serve replays in-process, this bench measures the full
 * serving path the paper's Section 3 daemons run: wire-protocol
 * framing, admission control, the sharded queue, and per-worker codec
 * contexts — by starting a real cdpud Daemon on a unix-domain socket
 * and driving a mixed-codec plan through client connections at each
 * worker count. Every response is byte-compared against a local
 * registry execution of the same call, so the timing rows are backed
 * by a zero-mismatch differential gate.
 *
 * Latency rows are the daemon's own serve.latency_ns histogram
 * (admission to response write): p50/p99/p999 per sweep point, with
 * the --slo scorecard evaluated against the final point.
 *
 * Honesty: host_cpus and core_bound are recorded, and the speedup
 * headline follows container::speedupHeadline — on a <=1-cpu host the
 * record carries NO speedup_best claim (time-slicing is not scaling).
 *
 * Flags: --calls N --min BYTES --max BYTES --seed S --workers MAX
 * --connections C --admission block|drop|deadline --worker-delay-ns N
 * --slo SPECS --json PATH --merge-into PATH (attach the daemon rows
 * under metrics.daemon of an existing BENCH_serve.json record).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_common.h"
#include "common/kernels.h"
#include "container/container.h"
#include "serve/client.h"
#include "serve/codec_context.h"
#include "serve/daemon.h"
#include "serve/stream_builder.h"

namespace cdpu
{
namespace
{

struct Row
{
    unsigned workers = 0;
    double seconds = 0.0;
    double mbPerSec = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
};

struct PlannedCall
{
    serve::WireRequest request;
    Bytes expected;
};

int
run(int argc, char **argv)
{
    bench::banner("Daemon serving: wire-protocol latency vs workers",
                  "Section 3 (compression as a service)");

    CliArgs args;
    serve::StreamConfig stream_config;
    stream_config.calls = 96;
    unsigned max_workers = 4;
    std::size_t connections = 3;
    std::string admission_name = "block";
    u64 worker_delay_ns = 0;
    std::string slo_specs =
        "any:compress:p99:0:250ms,any:decompress:p99:0:250ms";
    std::string merge_into;
    if (args.parse(argc, argv,
                   {"calls", "min", "max", "seed", "workers",
                    "connections", "admission", "worker-delay-ns",
                    "slo", "json", "merge-into", "kernel-tier"})) {
        stream_config.calls =
            static_cast<std::size_t>(args.getInt("calls", 96));
        stream_config.minCallBytes =
            static_cast<std::size_t>(args.getInt("min", 1 * kKiB));
        stream_config.maxCallBytes = static_cast<std::size_t>(
            args.getInt("max", static_cast<i64>(32 * kKiB)));
        stream_config.seed =
            static_cast<u64>(args.getInt("seed", 2023));
        max_workers =
            static_cast<unsigned>(args.getInt("workers", 4));
        connections = std::max<std::size_t>(
            1,
            static_cast<std::size_t>(args.getInt("connections", 3)));
        admission_name = args.getString("admission", "block");
        worker_delay_ns =
            static_cast<u64>(args.getInt("worker-delay-ns", 0));
        slo_specs = args.getString("slo", slo_specs);
        merge_into = args.getString("merge-into", "");
        std::string tier_name = args.getString("kernel-tier", "");
        if (!tier_name.empty()) {
            Status tier_status =
                kernels::applyTierOverride(tier_name);
            if (!tier_status.ok()) {
                std::fprintf(stderr, "--kernel-tier %s: %s\n",
                             tier_name.c_str(),
                             tier_status.message().c_str());
                return 1;
            }
        }
    }
    max_workers = std::max(1u, max_workers);
    // Wire requests carry whole buffers; sessions stay in-process.
    stream_config.streamingFraction = 0.0;

    auto admission =
        serve::admissionPolicyFromName(admission_name);
    if (!admission.ok()) {
        std::fprintf(stderr, "%s\n",
                     admission.status().message().c_str());
        return 1;
    }

    obs::SloTracker slo;
    Status declared = slo.declareSpecs(slo_specs);
    if (!declared.ok()) {
        std::fprintf(stderr, "--slo: %s\n",
                     declared.message().c_str());
        return 1;
    }

    auto stream = serve::buildMixedStream(stream_config);
    if (!stream.ok()) {
        std::fprintf(stderr, "stream build failed: %s\n",
                     stream.status().message().c_str());
        return 1;
    }

    // Plan: one wire request per stream call, expected bytes from a
    // local registry execution of the identical call.
    serve::CodecContext reference;
    std::vector<PlannedCall> plan;
    plan.reserve(stream.value().size());
    u64 payload_bytes = 0;
    for (const hcb::ReplayCall &call : stream.value().calls()) {
        PlannedCall planned;
        planned.request.requestId = call.id + 1;
        planned.request.tenantId = call.id % 4;
        planned.request.codecSpec = codec::codecName(call.codec);
        planned.request.direction = call.direction;
        planned.request.level = call.level;
        planned.request.windowLog = call.windowLog;
        planned.request.payload.assign(call.payload.begin(),
                                       call.payload.end());
        payload_bytes += call.payload.size();
        ByteSpan expected;
        Status executed = reference.execute(call, expected);
        if (!executed.ok()) {
            std::fprintf(stderr,
                         "reference call %llu failed: %s\n",
                         static_cast<unsigned long long>(call.id),
                         executed.message().c_str());
            return 1;
        }
        planned.expected.assign(expected.begin(), expected.end());
        plan.push_back(std::move(planned));
    }

    const std::string wall_clock_start = bench::wallClockUtc();
    const unsigned host_cpus = std::thread::hardware_concurrency();

    bench::BenchReport report("serve_daemon", argc, argv);
    report.config("calls", u64{plan.size()});
    report.config("payload_bytes", payload_bytes);
    report.config("seed", u64{stream_config.seed});
    report.config("host_cpus", u64{host_cpus});
    report.config("core_bound", max_workers > host_cpus);
    report.config("wall_clock_start", wall_clock_start);
    report.config("admission",
                  std::string(serve::admissionPolicyName(
                      admission.value())));
    report.config("connections", u64{connections});
    report.config("transport", std::string("unix"));
    report.config("kernel_tier",
                  std::string(kernels::tierName(
                      kernels::activeTier())));

    std::printf("\ncalls: %zu   payload: %.1f MiB   host cpus: %u\n\n",
                plan.size(),
                static_cast<double>(payload_bytes) /
                    static_cast<double>(kMiB),
                host_cpus);
    std::printf("%8s %10s %12s %10s %10s %10s\n", "workers", "sec",
                "MB/s", "p50(us)", "p99(us)", "p99.9(us)");

    std::vector<Row> rows;
    obs::JsonValue sweep = obs::JsonValue::array();
    obs::JsonValue slo_json;
    u64 total_mismatches = 0;

    std::vector<unsigned> worker_counts;
    for (unsigned w = 1; w <= max_workers; w *= 2)
        worker_counts.push_back(w);
    if (worker_counts.back() != max_workers)
        worker_counts.push_back(max_workers);

    for (unsigned workers : worker_counts) {
        std::ostringstream socket_path;
        socket_path << "/tmp/cdpud-bench-" << ::getpid() << "-"
                    << workers << ".sock";
        serve::DaemonConfig config;
        config.unixPath = socket_path.str();
        config.workers = workers;
        config.admission = admission.value();
        config.workerDelayNs = worker_delay_ns;
        serve::Daemon daemon(config);
        Status started = daemon.start();
        if (!started.ok()) {
            std::fprintf(stderr, "daemon start: %s\n",
                         started.message().c_str());
            return 1;
        }

        std::vector<serve::DaemonClient> clients;
        for (std::size_t c = 0; c < connections; ++c) {
            auto client = serve::DaemonClient::connectToUnix(
                config.unixPath);
            if (!client.ok()) {
                std::fprintf(stderr, "connect: %s\n",
                             client.status().message().c_str());
                return 1;
            }
            clients.push_back(std::move(client.value()));
        }

        std::vector<u64> mismatches(connections, 0);
        std::vector<std::thread> drivers;
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t c = 0; c < connections; ++c) {
            drivers.emplace_back([&, c] {
                for (std::size_t i = c; i < plan.size();
                     i += connections) {
                    auto response =
                        clients[c].call(plan[i].request);
                    if (!response.ok() ||
                        response.value().code !=
                            serve::WireCode::ok ||
                        response.value().payload !=
                            plan[i].expected) {
                        ++mismatches[c];
                    }
                }
            });
        }
        for (auto &driver : drivers)
            driver.join();
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();

        obs::CounterSnapshot live = daemon.counters();
        serve::DaemonReport drained = daemon.drain();
        ::unlink(config.unixPath.c_str());

        u64 point_mismatches = 0;
        for (u64 m : mismatches)
            point_mismatches += m;
        total_mismatches += point_mismatches;
        if (drained.executed != plan.size() ||
            point_mismatches != 0) {
            std::fprintf(stderr,
                         "differential gate failed at %u workers: "
                         "%llu executed, %llu mismatches\n",
                         workers,
                         static_cast<unsigned long long>(
                             drained.executed),
                         static_cast<unsigned long long>(
                             point_mismatches));
            return 1;
        }

        const obs::HistogramSnapshot &latency =
            live.histogramAt("serve.latency_ns");
        Row row;
        row.workers = workers;
        row.seconds = seconds;
        row.mbPerSec = (static_cast<double>(payload_bytes) /
                        static_cast<double>(kMiB)) /
                       seconds;
        row.p50Us = latency.percentile(0.50) / 1e3;
        row.p99Us = latency.percentile(0.99) / 1e3;
        row.p999Us = latency.percentile(0.999) / 1e3;
        rows.push_back(row);
        std::printf("%8u %10.3f %12.1f %10.0f %10.0f %10.0f\n",
                    workers, seconds, row.mbPerSec, row.p50Us,
                    row.p99Us, row.p999Us);

        obs::JsonValue point = obs::JsonValue::object();
        point.set("workers", u64{workers});
        point.set("seconds", seconds);
        point.set("mb_per_sec", row.mbPerSec);
        point.set("latency_p50_us", row.p50Us);
        point.set("latency_p99_us", row.p99Us);
        point.set("latency_p999_us", row.p999Us);
        point.set("core_bound", workers > host_cpus);
        point.set("mismatches", point_mismatches);
        sweep.push(std::move(point));

        if (workers == worker_counts.back()) {
            obs::CounterSnapshot merged = drained.runtime;
            merged.merge(drained.work);
            slo_json = slo.toJson(merged).at("slo");
        }
    }

    double base = rows.front().mbPerSec;
    double best = 0.0;
    for (const Row &row : rows)
        best = std::max(best, row.mbPerSec);

    obs::JsonValue headline = obs::JsonValue::object();
    container::speedupHeadline(headline, host_cpus, base, best);

    report.metric("sweep", std::move(sweep));
    report.metric("mb_per_sec_1w", headline.at("mb_per_sec_1w"));
    report.metric("mb_per_sec_best",
                  headline.at("mb_per_sec_best"));
    report.metric("core_bound", headline.at("core_bound"));
    if (headline.has("speedup_best")) {
        report.metric("speedup_best", headline.at("speedup_best"));
        std::printf("\nbest speedup over 1 worker: %.2fx\n",
                    best / base);
    } else {
        std::printf("\nhost has %u cpu(s): core_bound record, no "
                    "speedup headline\n",
                    host_cpus);
    }
    report.metric("mismatches", total_mismatches);
    report.metric("slo", slo_json);
    report.metric("wall_clock_end", bench::wallClockUtc());
    Status written = report.write();
    if (!written.ok()) {
        std::fprintf(stderr, "%s\n", written.message().c_str());
        return 1;
    }

    // --merge-into: attach the daemon rows to an existing
    // BENCH_serve.json record under metrics.daemon, preserving the
    // replay content around it.
    if (!merge_into.empty()) {
        std::ifstream in(merge_into, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "--merge-into: cannot read %s\n",
                         merge_into.c_str());
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        auto record = obs::JsonValue::parse(text.str());
        if (!record.ok()) {
            std::fprintf(stderr, "--merge-into: %s\n",
                         record.status().message().c_str());
            return 1;
        }
        obs::JsonValue daemon_doc = obs::JsonValue::object();
        obs::JsonValue daemon_sweep = obs::JsonValue::array();
        for (const Row &row : rows) {
            obs::JsonValue point = obs::JsonValue::object();
            point.set("workers", u64{row.workers});
            point.set("mb_per_sec", row.mbPerSec);
            point.set("latency_p50_us", row.p50Us);
            point.set("latency_p99_us", row.p99Us);
            point.set("latency_p999_us", row.p999Us);
            daemon_sweep.push(std::move(point));
        }
        daemon_doc.set("sweep", std::move(daemon_sweep));
        daemon_doc.set("host_cpus", u64{host_cpus});
        daemon_doc.set("core_bound", headline.at("core_bound"));
        daemon_doc.set("mb_per_sec_1w",
                       headline.at("mb_per_sec_1w"));
        daemon_doc.set("mb_per_sec_best",
                       headline.at("mb_per_sec_best"));
        if (headline.has("speedup_best"))
            daemon_doc.set("speedup_best",
                           headline.at("speedup_best"));
        daemon_doc.set("admission",
                       std::string(serve::admissionPolicyName(
                           admission.value())));
        daemon_doc.set("mismatches", total_mismatches);
        daemon_doc.set("slo", slo_json);
        daemon_doc.set("wall_clock", bench::wallClockUtc());
        obs::JsonValue metrics = record.value().at("metrics");
        metrics.set("daemon", std::move(daemon_doc));
        record.value().set("metrics", std::move(metrics));
        std::ofstream out(merge_into, std::ios::binary);
        out << record.value().dump(1) << '\n';
        std::printf("[telemetry] merged daemon rows into %s\n",
                    merge_into.c_str());
    }
    return 0;
}

} // namespace
} // namespace cdpu

int
main(int argc, char **argv)
{
    return cdpu::run(argc, argv);
}
