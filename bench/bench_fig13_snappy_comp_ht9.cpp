/**
 * @file
 * Figure 13: Snappy compression with a 2^9-entry hash table — the
 * "how small can a useful Snappy accelerator be" experiment.
 */

#include "bench_common.h"
#include "bench_dse_common.h"
#include "common/table.h"
#include "dse/figure_tables.h"

using namespace cdpu;

int
main(int argc, char **argv)
{
    bench::banner("Snappy compression with 2^9 hash-table entries",
                  "Figure 13 and Section 6.3");

    hcb::SuiteConfig suite_config =
        bench::suiteConfigFromArgs(argc, argv);
    fleet::FleetModel fleet;
    hcb::SuiteGenerator generator(fleet, suite_config);
    hcb::Suite suite = generator.generate(
        codec::CodecId::snappy, codec::Direction::compress);
    std::printf("Suite: %zu files, %s uncompressed\n\n",
                suite.files.size(),
                TablePrinter::bytes(suite.totalBytes()).c_str());

    dse::SweepRunner runner(suite);
    std::printf("%s\n", dse::figure13(runner).c_str());

    hw::CdpuConfig tiny;
    tiny.historySramBytes = 2 * kKiB;
    tiny.hashTable.log2Entries = 9;
    dse::DsePoint point = runner.run(tiny);
    hw::CdpuConfig full;
    std::printf("Minimal design (2K history, 2^9 hash): %.1fx vs "
                "Xeon, ratio vs SW %.3f, area %.3f mm^2 = %.0f%% of "
                "the full design (%.1f%% of a Xeon core).\n"
                "Paper: negligible speedup loss, 34%% of full area, "
                "1.6%% of a Xeon core.\n",
                point.speedup(), point.ratioVsSw(), point.areaMm2,
                100 * point.areaMm2 /
                    hw::snappyCompressorAreaMm2(full),
                100 * point.areaMm2 / hw::kXeonCoreTileMm2);

    bench::BenchReport report("fig13_snappy_comp_ht9", argc, argv);
    report.config("files", static_cast<u64>(suite.files.size()));
    report.config("cap_bytes",
                  static_cast<u64>(suite_config.maxFileBytes));
    report.config("seed", suite_config.seed);
    bench::recordDsePoint(report, point, runner.totalBytes());
    return bench::finishReport(report);
}
