/**
 * @file
 * Figure 15: ZStd compression CDPU sweep across placements and
 * history SRAM sizes, with ratio vs software.
 */

#include "bench_common.h"
#include "bench_dse_common.h"
#include "common/table.h"
#include "dse/figure_tables.h"

using namespace cdpu;

int
main(int argc, char **argv)
{
    bench::banner("ZStd compression design-space exploration",
                  "Figure 15 and Section 6.5");

    hcb::SuiteConfig suite_config =
        bench::suiteConfigFromArgs(argc, argv);
    fleet::FleetModel fleet;
    hcb::SuiteGenerator generator(fleet, suite_config);
    hcb::Suite suite = generator.generate(
        codec::CodecId::zstdlite, codec::Direction::compress);
    std::printf("Suite: %zu files, %s uncompressed\n\n",
                suite.files.size(),
                TablePrinter::bytes(suite.totalBytes()).c_str());

    dse::SweepRunner runner(suite);
    std::printf("%s\n", dse::figure15(runner).c_str());

    dse::DsePoint flagship = dse::flagshipPoint(runner);
    std::printf("Flagship (RoCC, 64K, 2^14 hash): %.1fx vs Xeon, "
                "%.2f GB/s, ratio vs SW %.3f, %.2f mm^2.\n"
                "Paper: 15.8x (3.5 GB/s vs 0.22 GB/s), ratio 84%% of "
                "SW, 3.48 mm^2.\n",
                flagship.speedup(),
                flagship.accelGBps(runner.totalBytes()),
                flagship.ratioVsSw(), flagship.areaMm2);

    bench::BenchReport report("fig15_zstd_comp", argc, argv);
    report.config("files", static_cast<u64>(suite.files.size()));
    report.config("cap_bytes",
                  static_cast<u64>(suite_config.maxFileBytes));
    report.config("seed", suite_config.seed);
    bench::recordDsePoint(report, flagship, runner.totalBytes());
    return bench::finishReport(report);
}
