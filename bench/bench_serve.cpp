/**
 * @file
 * Fleet-replay throughput vs worker count.
 *
 * Replays one mixed-codec call stream through the serve engine at a
 * sweep of worker counts and reports aggregate throughput and call
 * latency percentiles — the software side of the paper's Section 3
 * serving analysis: (de)compression capacity scales with cores thrown
 * at independent calls, which is exactly the capacity a CDPU returns
 * to the application. The 1-worker row doubles as the context-reuse
 * baseline (same engine, no parallelism); replaySequential() is run
 * first to verify the engine's outputs before timing anything.
 *
 * Flags: --calls N --min BYTES --max BYTES --seed S --workers CSV-free
 * max (sweeps 1,2,4,..,max) --json PATH.
 *
 * Note: scaling is bounded by the host's cores; the committed
 * BENCH_serve.json records host_cpus so a 1-core container's flat
 * curve is not misread as an engine defect.
 */

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/engine.h"
#include "serve/stream_builder.h"

namespace cdpu
{
namespace
{

struct Row
{
    unsigned workers = 0;
    double seconds = 0.0;
    double mbPerSec = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    u64 steals = 0;
};

int
run(int argc, char **argv)
{
    bench::banner("Fleet replay: aggregate throughput vs worker count",
                  "Section 3 (serving: independent calls x cores)");

    CliArgs args;
    serve::StreamConfig stream_config;
    unsigned max_workers = 8;
    if (args.parse(argc, argv,
                   {"calls", "min", "max", "seed", "workers", "codec",
                    "streaming", "json"})) {
        stream_config.calls =
            static_cast<std::size_t>(args.getInt("calls", 192));
        stream_config.minCallBytes =
            static_cast<std::size_t>(args.getInt("min", 1 * kKiB));
        stream_config.maxCallBytes = static_cast<std::size_t>(
            args.getInt("max", static_cast<i64>(48 * kKiB)));
        stream_config.seed = static_cast<u64>(args.getInt("seed", 2023));
        max_workers =
            static_cast<unsigned>(args.getInt("workers", 8));
        // --streaming P routes P% of calls through the codec session
        // API instead of one whole-buffer call per payload.
        stream_config.streamingFraction =
            static_cast<double>(args.getInt("streaming", 0)) / 100.0;
        std::string codec_name = args.getString("codec", "");
        if (!codec_name.empty()) {
            auto id = codec::codecFromName(codec_name);
            if (!id.ok()) {
                std::fprintf(stderr, "--codec %s: %s\n",
                             codec_name.c_str(),
                             id.status().message().c_str());
                return 1;
            }
            stream_config.codecs = {id.value()};
        }
    }
    max_workers = std::max(1u, max_workers);

    auto stream = serve::buildMixedStream(stream_config);
    if (!stream.ok()) {
        std::fprintf(stderr, "stream build failed: %s\n",
                     stream.status().message().c_str());
        return 1;
    }

    // Correctness gate before timing: the parallel engine must agree
    // with the no-thread reference on every call.
    serve::ReplayReport reference =
        serve::replaySequential(stream.value());
    if (reference.failed != 0) {
        std::fprintf(stderr, "reference replay had %llu failures\n",
                     static_cast<unsigned long long>(reference.failed));
        return 1;
    }

    bench::BenchReport report("serve_replay", argc, argv);
    report.config("calls", u64{stream.value().size()});
    report.config("payload_bytes",
                  u64{stream.value().totalPayloadBytes()});
    report.config("seed", u64{stream_config.seed});
    report.config("host_cpus",
                  u64{std::thread::hardware_concurrency()});
    report.config("policy", std::string("block"));
    report.config("streaming_fraction",
                  stream_config.streamingFraction);

    // Self-describing telemetry: the capability metadata of every
    // codec the stream exercises, straight from the registry.
    obs::JsonValue codecs_json = obs::JsonValue::array();
    const std::vector<codec::CodecId> &stream_codecs =
        stream_config.codecs.empty() ? codec::allCodecs()
                                     : stream_config.codecs;
    for (codec::CodecId id : stream_codecs)
        codecs_json.push(bench::codecCapsJson(id));
    report.config("codecs", std::move(codecs_json));

    std::printf("\ncalls: %zu   payload: %.1f MiB   host cpus: %u\n\n",
                stream.value().size(),
                static_cast<double>(
                    stream.value().totalPayloadBytes()) /
                    static_cast<double>(kMiB),
                std::thread::hardware_concurrency());
    std::printf("%8s %10s %12s %10s %10s %8s\n", "workers", "sec",
                "MB/s", "p50(us)", "p99(us)", "steals");

    std::vector<Row> rows;
    obs::JsonValue sweep = obs::JsonValue::array();
    for (unsigned workers = 1; workers <= max_workers; workers *= 2) {
        serve::EngineConfig config;
        config.workers = workers;
        serve::ReplayEngine engine(config);
        serve::ReplayReport run_report = engine.run(stream.value());

        // Differential check on every sweep point, not just in tests.
        bool identical =
            run_report.work.counters == reference.work.counters;
        for (std::size_t i = 0; identical && i < stream.value().size();
             ++i) {
            identical =
                run_report.outcomes[i].outputHash ==
                reference.outcomes[i].outputHash;
        }
        if (!identical || run_report.failed != 0) {
            std::fprintf(stderr,
                         "parallel replay diverged at %u workers\n",
                         workers);
            return 1;
        }

        Row row;
        row.workers = workers;
        row.seconds = run_report.elapsedSeconds;
        row.mbPerSec = static_cast<double>(run_report.bytesIn()) /
                       1e6 / run_report.elapsedSeconds;
        const auto &latency = run_report.latency();
        row.p50Us = latency.percentile(0.50) / 1e3;
        row.p99Us = latency.percentile(0.99) / 1e3;
        row.steals = run_report.runtime.at("serve.steals");
        rows.push_back(row);

        std::printf("%8u %10.3f %12.1f %10.1f %10.1f %8llu\n",
                    row.workers, row.seconds, row.mbPerSec, row.p50Us,
                    row.p99Us,
                    static_cast<unsigned long long>(row.steals));

        obs::JsonValue point = obs::JsonValue::object();
        point.set("workers", u64{workers});
        point.set("seconds", row.seconds);
        point.set("mb_per_sec", row.mbPerSec);
        point.set("p50_us", row.p50Us);
        point.set("p99_us", row.p99Us);
        point.set("steals", u64{row.steals});
        sweep.push(std::move(point));

        if (workers == 1)
            report.counters(run_report.work);
    }

    double base = rows.front().mbPerSec;
    double best = 0.0;
    for (const Row &row : rows)
        best = std::max(best, row.mbPerSec);
    std::printf("\nbest speedup over 1 worker: %.2fx\n", best / base);

    report.metric("sweep", std::move(sweep));
    report.metric("mb_per_sec_1w", base);
    report.metric("mb_per_sec_best", best);
    report.metric("speedup_best", best / base);
    Status written = report.write();
    if (!written.ok()) {
        std::fprintf(stderr, "%s\n", written.message().c_str());
        return 1;
    }
    return 0;
}

} // namespace
} // namespace cdpu

int
main(int argc, char **argv)
{
    return cdpu::run(argc, argv);
}
