/**
 * @file
 * Fleet-replay throughput vs worker count.
 *
 * Replays one mixed-codec call stream through the serve engine at a
 * sweep of worker counts and reports aggregate throughput and call
 * latency percentiles — the software side of the paper's Section 3
 * serving analysis: (de)compression capacity scales with cores thrown
 * at independent calls, which is exactly the capacity a CDPU returns
 * to the application. The 1-worker row doubles as the context-reuse
 * baseline (same engine, no parallelism); replaySequential() is run
 * first to verify the engine's outputs before timing anything.
 *
 * Flags: --calls N --min BYTES --max BYTES --seed S --workers CSV-free
 * max (sweeps 1,2,4,..,max) --json PATH, plus the telemetry pipeline:
 * --telemetry attaches an obs::Telemetry hub (per-call spans sampled
 * 1-in---span-period, per-worker flight rings, metrics samples every
 * --metrics-every completed calls, dimensioned latency) and --slo
 * declares comma-separated targets ("any:decompress:p99:4096:250us")
 * evaluated against the final sweep point. Telemetry is off by
 * default so the headline numbers carry zero instrumentation cost;
 * CI's overhead guard runs both configurations and fails the build if
 * the attached hub costs more than 5% throughput.
 *
 * Note: scaling is bounded by the host's cores; the committed
 * BENCH_serve.json records host_cpus, wall-clock endpoints, and a
 * core_bound flag so a 1-core container's flat curve is not misread
 * as an engine defect.
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "codec/obs_bridge.h"
#include "common/kernels.h"
#include "container/container.h"
#include "serve/engine.h"
#include "serve/stream_builder.h"

namespace cdpu
{
namespace
{

struct Row
{
    unsigned workers = 0;
    double seconds = 0.0;
    double mbPerSec = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    u64 steals = 0;
};

int
run(int argc, char **argv)
{
    bench::banner("Fleet replay: aggregate throughput vs worker count",
                  "Section 3 (serving: independent calls x cores)");

    CliArgs args;
    serve::StreamConfig stream_config;
    unsigned max_workers = 8;
    bool telemetry_on = false;
    u64 span_period = 64;
    u64 metrics_every = 32;
    std::string slo_specs;
    if (args.parse(argc, argv,
                   {"calls", "min", "max", "seed", "workers", "codec",
                    "streaming", "json", "telemetry", "span-period",
                    "metrics-every", "slo", "kernel-tier"})) {
        stream_config.calls =
            static_cast<std::size_t>(args.getInt("calls", 192));
        stream_config.minCallBytes =
            static_cast<std::size_t>(args.getInt("min", 1 * kKiB));
        stream_config.maxCallBytes = static_cast<std::size_t>(
            args.getInt("max", static_cast<i64>(48 * kKiB)));
        stream_config.seed = static_cast<u64>(args.getInt("seed", 2023));
        max_workers =
            static_cast<unsigned>(args.getInt("workers", 8));
        // --streaming P routes P% of calls through the codec session
        // API instead of one whole-buffer call per payload.
        stream_config.streamingFraction =
            static_cast<double>(args.getInt("streaming", 0)) / 100.0;
        std::string codec_name = args.getString("codec", "");
        if (!codec_name.empty()) {
            auto id = codec::codecFromName(codec_name);
            if (!id.ok()) {
                std::fprintf(stderr, "--codec %s: %s\n",
                             codec_name.c_str(),
                             id.status().message().c_str());
                return 1;
            }
            stream_config.codecs = {id.value()};
        }
        telemetry_on = args.getBool("telemetry", false);
        span_period =
            static_cast<u64>(args.getInt("span-period", 64));
        metrics_every =
            static_cast<u64>(args.getInt("metrics-every", 32));
        slo_specs = args.getString(
            "slo", "any:decompress:p99:0:50ms,any:compress:p99:0:50ms");
        std::string tier_name = args.getString("kernel-tier", "");
        if (!tier_name.empty()) {
            Status tier_status = kernels::applyTierOverride(tier_name);
            if (!tier_status.ok()) {
                std::fprintf(stderr, "--kernel-tier %s: %s\n",
                             tier_name.c_str(),
                             tier_status.message().c_str());
                return 1;
            }
        }
    }
    max_workers = std::max(1u, max_workers);

    auto stream = serve::buildMixedStream(stream_config);
    if (!stream.ok()) {
        std::fprintf(stderr, "stream build failed: %s\n",
                     stream.status().message().c_str());
        return 1;
    }

    // Correctness gate before timing: the parallel engine must agree
    // with the no-thread reference on every call.
    serve::ReplayReport reference =
        serve::replaySequential(stream.value());
    if (reference.failed != 0) {
        std::fprintf(stderr, "reference replay had %llu failures\n",
                     static_cast<unsigned long long>(reference.failed));
        return 1;
    }

    const std::string wall_clock_start = bench::wallClockUtc();
    const unsigned host_cpus = std::thread::hardware_concurrency();

    bench::BenchReport report("serve_replay", argc, argv);
    report.config("calls", u64{stream.value().size()});
    report.config("payload_bytes",
                  u64{stream.value().totalPayloadBytes()});
    report.config("seed", u64{stream_config.seed});
    report.config("host_cpus", u64{host_cpus});
    // Honesty flag: sweep points beyond the host's cores time-slice
    // workers on shared cores, so their scaling is meaningless.
    report.config("core_bound", max_workers > host_cpus);
    report.config("wall_clock_start", wall_clock_start);
    report.config("policy", std::string("block"));
    report.config("streaming_fraction",
                  stream_config.streamingFraction);
    report.config("telemetry", telemetry_on);
    // Kernel-tier provenance: which SIMD tier produced these numbers.
    report.config("kernel_tier",
                  std::string(kernels::tierName(kernels::activeTier())));
    report.config(
        "kernel_detected_tier",
        std::string(kernels::tierName(kernels::detectedTier())));
    report.config("kernel_cpu_features", kernels::cpuFeatureSummary());
    if (telemetry_on) {
        report.config("span_period", u64{span_period});
        report.config("metrics_every", u64{metrics_every});
    }

    // Self-describing telemetry: the capability metadata of every
    // codec the stream exercises, straight from the registry.
    obs::JsonValue codecs_json = obs::JsonValue::array();
    const std::vector<codec::CodecId> &stream_codecs =
        stream_config.codecs.empty() ? codec::allCodecs()
                                     : stream_config.codecs;
    for (codec::CodecId id : stream_codecs)
        codecs_json.push(bench::codecCapsJson(id));
    report.config("codecs", std::move(codecs_json));

    std::printf("\ncalls: %zu   payload: %.1f MiB   host cpus: %u\n\n",
                stream.value().size(),
                static_cast<double>(
                    stream.value().totalPayloadBytes()) /
                    static_cast<double>(kMiB),
                std::thread::hardware_concurrency());
    std::printf("%8s %10s %12s %10s %10s %8s\n", "workers", "sec",
                "MB/s", "p50(us)", "p99(us)", "steals");

    std::vector<Row> rows;
    obs::JsonValue sweep = obs::JsonValue::array();
    // Telemetry from the widest sweep point (a fresh hub per point
    // keeps each point's spans/metrics self-contained).
    obs::JsonValue telemetry_doc;
    obs::SloTracker slo;
    if (telemetry_on) {
        Status declared = slo.declareSpecs(slo_specs);
        if (!declared.ok()) {
            std::fprintf(stderr, "--slo: %s\n",
                         declared.message().c_str());
            return 1;
        }
    }
    for (unsigned workers = 1; workers <= max_workers; workers *= 2) {
        serve::EngineConfig config;
        config.workers = workers;
        std::unique_ptr<obs::Telemetry> tele;
        if (telemetry_on) {
            obs::TelemetryConfig tc;
            tc.spanSamplePeriod = span_period;
            tc.metricsEveryCalls = metrics_every;
            tele = std::make_unique<obs::Telemetry>(
                tc, workers, codec::codecFlightNamer());
            config.telemetry = tele.get();
        }
        serve::ReplayEngine engine(config);
        serve::ReplayReport run_report = engine.run(stream.value());

        // Differential check on every sweep point, not just in tests.
        bool identical =
            run_report.work.counters == reference.work.counters;
        for (std::size_t i = 0; identical && i < stream.value().size();
             ++i) {
            identical =
                run_report.outcomes[i].outputHash ==
                reference.outcomes[i].outputHash;
        }
        if (!identical || run_report.failed != 0) {
            std::fprintf(stderr,
                         "parallel replay diverged at %u workers\n",
                         workers);
            return 1;
        }

        Row row;
        row.workers = workers;
        row.seconds = run_report.elapsedSeconds;
        row.mbPerSec = static_cast<double>(run_report.bytesIn()) /
                       1e6 / run_report.elapsedSeconds;
        const auto &latency = run_report.latency();
        row.p50Us = latency.percentile(0.50) / 1e3;
        row.p99Us = latency.percentile(0.99) / 1e3;
        row.steals = run_report.runtime.at("serve.steals");
        rows.push_back(row);

        std::printf("%8u %10.3f %12.1f %10.1f %10.1f %8llu\n",
                    row.workers, row.seconds, row.mbPerSec, row.p50Us,
                    row.p99Us,
                    static_cast<unsigned long long>(row.steals));

        obs::JsonValue point = obs::JsonValue::object();
        point.set("workers", u64{workers});
        point.set("core_bound", workers > host_cpus);
        point.set("seconds", row.seconds);
        point.set("mb_per_sec", row.mbPerSec);
        point.set("p50_us", row.p50Us);
        point.set("p99_us", row.p99Us);
        point.set("p999_us", run_report.latency().percentile(0.999) / 1e3);
        point.set("steals", u64{row.steals});
        if (tele) {
            point.set("spans_sampled", u64{run_report.spansSampled});
            point.set("metrics_samples", u64{run_report.metricsSamples});
        }
        sweep.push(std::move(point));

        if (workers == 1)
            report.counters(run_report.work);

        // The widest point's telemetry becomes the committed document:
        // spans, the time series, the SLO scorecard over dimensioned
        // latency, and any fault dump.
        if (tele && workers * 2 > max_workers) {
            telemetry_doc = obs::JsonValue::object();
            telemetry_doc.set("workers", u64{workers});
            telemetry_doc.set("spans", tele->spans().toJson());
            if (run_report.metricsSamples)
                telemetry_doc.set(
                    "metrics_series",
                    run_report.metricsSeries.at("metrics_series"));
            obs::CounterSnapshot merged = run_report.runtime;
            merged.merge(run_report.work);
            telemetry_doc.set("slo",
                              slo.toJson(merged).at("slo"));
            if (tele->hasFaultDump())
                telemetry_doc.set("fault_dump", tele->faultDump());
        }
    }

    double base = rows.front().mbPerSec;
    double best = 0.0;
    for (const Row &row : rows)
        best = std::max(best, row.mbPerSec);

    // Honesty policy (container::speedupHeadline): on a <=1-cpu host
    // worker scaling is time-slicing, so the record stays core_bound
    // with no speedup_best claim.
    obs::JsonValue headline = obs::JsonValue::object();
    container::speedupHeadline(headline, host_cpus, base, best);

    report.metric("sweep", std::move(sweep));
    report.metric("mb_per_sec_1w", headline.at("mb_per_sec_1w"));
    report.metric("mb_per_sec_best", headline.at("mb_per_sec_best"));
    report.metric("core_bound", headline.at("core_bound"));
    if (headline.has("speedup_best")) {
        report.metric("speedup_best", headline.at("speedup_best"));
        std::printf("\nbest speedup over 1 worker: %.2fx\n",
                    best / base);
    } else {
        std::printf("\nhost has %u cpu(s): core_bound record, no "
                    "speedup headline\n",
                    host_cpus);
    }
    if (telemetry_on)
        report.metric("telemetry", std::move(telemetry_doc));
    report.metric("wall_clock_end", bench::wallClockUtc());
    Status written = report.write();
    if (!written.ok()) {
        std::fprintf(stderr, "%s\n", written.message().c_str());
        return 1;
    }
    return 0;
}

} // namespace
} // namespace cdpu

int
main(int argc, char **argv)
{
    return cdpu::run(argc, argv);
}
