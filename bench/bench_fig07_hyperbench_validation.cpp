/**
 * @file
 * Figure 7 / Section 4.1: HyperCompressBench validation — the
 * generated suites' call-size CDFs against the fleet distributions,
 * and achieved compression ratios against the fleet aggregates.
 */

#include "bench_common.h"
#include "common/table.h"
#include "hyperbench/suite_validator.h"

using namespace cdpu;
using namespace cdpu::hcb;

int
main(int argc, char **argv)
{
    bench::banner("HyperCompressBench validation",
                  "Figure 7 and Section 4.1");

    fleet::FleetModel fleet;
    SuiteConfig config = bench::suiteConfigFromArgs(argc, argv);
    SuiteGenerator generator(fleet, config);
    bench::BenchReport telemetry("fig07_hyperbench_validation", argc,
                                 argv);
    telemetry.config("files", static_cast<u64>(config.filesPerSuite));
    telemetry.config("cap_bytes",
                     static_cast<u64>(config.maxFileBytes));

    TablePrinter summary({"Suite", "Files", "Total bytes",
                          "KS dist vs fleet", "Achieved ratio",
                          "Fleet ratio", "Ratio error"});

    for (codec::CodecId algorithm :
         {codec::CodecId::snappy, codec::CodecId::zstdlite}) {
        for (Direction direction :
             {Direction::compress, Direction::decompress}) {
            Suite suite = generator.generate(algorithm, direction);
            ValidationReport report =
                validateSuite(suite, fleet, config.maxFileBytes);

            std::string name = codec::codecDisplayName(algorithm) +
                               "-" +
                               codec::directionName(direction);
            telemetry.metric(name + "_ks_distance",
                             report.callSizeKsDistance);
            telemetry.metric(name + "_ratio_error",
                             report.ratioError());
            summary.addRow(
                {name, std::to_string(suite.files.size()),
                 TablePrinter::bytes(suite.totalBytes()),
                 TablePrinter::num(report.callSizeKsDistance, 3),
                 TablePrinter::num(report.achievedRatio, 2),
                 TablePrinter::num(report.fleetRatio, 2),
                 TablePrinter::percent(report.ratioError())});

            // Per-bin CDF comparison (the Figure 7 curves).
            fleet::Channel channel =
                toFleetChannel(algorithm, direction);
            WeightedHistogram fleet_capped = cappedFleetCallSizes(
                fleet, channel, config.maxFileBytes);
            TablePrinter cdf({"ceil(lg2(B))", "Suite cum %",
                              "Fleet cum %"});
            for (int bin = 10;
                 bin <= static_cast<int>(ceilLog2(config.maxFileBytes));
                 ++bin) {
                auto cum_at = [bin](const WeightedHistogram &h) {
                    double cum = 0;
                    for (const auto &point : h.cdf())
                        if (point.x <= bin)
                            cum = point.cumFraction;
                    return cum;
                };
                cdf.addRow(
                    {std::to_string(bin),
                     TablePrinter::percent(
                         cum_at(report.suiteCallSizes), 0),
                     TablePrinter::percent(cum_at(fleet_capped), 0)});
            }
            std::printf("%s suite call-size CDF:\n%s\n", name.c_str(),
                        cdf.render().c_str());
        }
    }
    std::printf("%s\n", summary.render().c_str());
    std::printf("Paper checkpoints: suite distributions line up with "
                "the fleet's (Fig 7); achieved ratios within 5-10%% "
                "of fleet ratios. Call sizes are capped at %s here "
                "(README: scaled-down suite).\n",
                TablePrinter::bytes(config.maxFileBytes).c_str());
    if (auto status = telemetry.write(); !status.ok()) {
        std::fprintf(stderr, "%s\n", status.toString().c_str());
        return 1;
    }
    return 0;
}
