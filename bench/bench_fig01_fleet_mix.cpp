/**
 * @file
 * Figure 1: percentage of fleet-wide (de)compression cycles over eight
 * years, broken down by algorithm, reconstructed by GWP-style sampling
 * of the synthetic fleet; plus the final-slice legend shares.
 */

#include "bench_common.h"
#include "common/table.h"
#include "fleet/reports.h"

using namespace cdpu;
using namespace cdpu::fleet;

int
main(int argc, char **argv)
{
    bench::banner("Fleet (de)compression cycle mix over time",
                  "Figure 1 and Section 3.2");

    bench::BenchReport report("fig01_fleet_mix", argc, argv);
    FleetModel model;
    GwpSampler sampler(model, 101);
    auto timeline = sampler.sampleTimeline(2500);
    auto final_records = sampler.sampleFinalMonth(100000);

    // Final-slice legend: measured vs the paper's numbers.
    TablePrinter legend({"Channel", "Sampled", "Paper (Fig 1 legend)"});
    for (const auto &row : channelCycleShares(final_records, model)) {
        std::string key = row.label;
        for (char &c : key)
            if (c == '-' || c == ' ')
                c = '_';
        report.metric(key + "_cycle_share", row.measured);
        legend.addRow({row.label, TablePrinter::percent(row.measured),
                       TablePrinter::percent(row.groundTruth)});
    }
    std::printf("%s\n", legend.render().c_str());

    // Time series at yearly resolution for the headline channels.
    TablePrinter series({"Month", "C-Snappy", "D-Snappy", "C-ZSTD",
                         "D-ZSTD", "C-Flate", "D-Flate"});
    std::vector<Channel> channels = {
        {FleetCodec::snappy, Direction::compress},
        {FleetCodec::snappy, Direction::decompress},
        {FleetCodec::zstd, Direction::compress},
        {FleetCodec::zstd, Direction::decompress},
        {FleetCodec::flate, Direction::compress},
        {FleetCodec::flate, Direction::decompress},
    };
    std::vector<std::vector<double>> lines;
    for (const auto &channel : channels)
        lines.push_back(channelTimeline(timeline, channel));
    for (unsigned month = 3; month < FleetModel::kMonths; month += 12) {
        char label[16];
        std::snprintf(label, sizeof(label), "Y%u-%02u", month / 12 + 1,
                      month % 12 + 1);
        std::vector<std::string> row = {label};
        for (const auto &line : lines)
            row.push_back(TablePrinter::percent(line[month]));
        series.addRow(std::move(row));
    }
    std::printf("%s\n", series.render().c_str());

    std::printf("Paper checkpoints: (de)compression is %.1f%% of fleet "
                "cycles; %.0f%% of those are decompression; ZStd grows "
                "0%% -> ~10%% of (de)compression cycles in about a "
                "year after introduction.\n",
                FleetModel::kFleetCycleFraction * 100,
                FleetModel::kDecompressCycleShare * 100);
    report.metric("fleet_cycle_fraction",
                  FleetModel::kFleetCycleFraction);
    report.metric("decompress_cycle_share",
                  FleetModel::kDecompressCycleShare);
    if (auto status = report.write(); !status.ok()) {
        std::fprintf(stderr, "%s\n", status.toString().c_str());
        return 1;
    }
    return 0;
}
