/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 *
 * Every bench binary accepts `--json <path>` and, when given, writes a
 * stable machine-readable record via BenchReport next to its human
 * output. The record is the repo's perf trajectory format
 * (BENCH_*.json): benchmark id, config, metrics, and the counter
 * snapshot of the measured PU.
 */

#ifndef CDPU_BENCH_BENCH_COMMON_H_
#define CDPU_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <string>

#include "codec/registry.h"
#include "common/cli.h"
#include "hyperbench/suite_generator.h"
#include "obs/counters.h"
#include "obs/json.h"

namespace cdpu::bench
{

/** Capability metadata for one codec as a JSON object, so telemetry
 *  records are self-describing about what the codec under test can do
 *  (levels, window range, expansion bound, streaming support). */
inline obs::JsonValue
codecCapsJson(codec::CodecId id)
{
    const codec::CodecCaps &caps = codec::registry(id).caps;
    obs::JsonValue json = obs::JsonValue::object();
    json.set("name", caps.name);
    json.set("display_name", caps.displayName);
    json.set("has_levels", caps.hasLevels);
    if (caps.hasLevels) {
        json.set("min_level", caps.minLevel);
        json.set("max_level", caps.maxLevel);
    }
    json.set("default_level", caps.defaultLevel);
    json.set("has_window", caps.hasWindow);
    if (caps.hasWindow) {
        json.set("min_window_log", u64{caps.minWindowLog});
        json.set("max_window_log", u64{caps.maxWindowLog});
    }
    json.set("default_window_log", u64{caps.defaultWindowLog});
    json.set("max_expansion_num", u64{caps.maxExpansionNum});
    json.set("max_expansion_den", u64{caps.maxExpansionDen});
    json.set("max_expansion_slop", u64{caps.maxExpansionSlop});
    json.set("incremental_compress", caps.incrementalCompress);
    json.set("incremental_decompress", caps.incrementalDecompress);
    json.set("streaming_shares_buffer_format",
             caps.streamingSharesBufferFormat);
    json.set("is_pipeline", caps.isPipeline);
    if (caps.isPipeline) {
        json.set("terminal", codec::codecName(codec::toCodecId(
                                 caps.terminal)));
        obs::JsonValue stages = obs::JsonValue::array();
        for (transform::StageId stage : caps.stages)
            stages.push(obs::JsonValue(transform::stageName(stage)));
        json.set("stages", std::move(stages));
    }
    return json;
}

/**
 * ISO-8601 UTC wall-clock stamp. Honesty field for committed bench
 * records: steady-clock durations say how long a run took, but only
 * wall-clock endpoints say *when* it ran — a record regenerated months
 * after the code changed is a stale claim, and the timestamps make
 * that checkable.
 */
inline std::string
wallClockUtc()
{
    const std::time_t now = std::chrono::system_clock::to_time_t(
        std::chrono::system_clock::now());
    std::tm parts{};
    gmtime_r(&now, &parts);
    char buffer[32];
    std::strftime(buffer, sizeof buffer, "%Y-%m-%dT%H:%M:%SZ", &parts);
    return buffer;
}

/** Prints the standard bench banner. */
inline void
banner(const std::string &title, const std::string &paper_reference)
{
    std::printf("=======================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_reference.c_str());
    std::printf("=======================================================\n");
}

/** Standard suite configuration, overridable via --files / --cap. */
inline hcb::SuiteConfig
suiteConfigFromArgs(int argc, const char *const *argv)
{
    CliArgs args;
    hcb::SuiteConfig config;
    if (args.parse(argc, argv, {"files", "cap", "seed", "json"})) {
        config.filesPerSuite =
            static_cast<std::size_t>(args.getInt("files", 48));
        config.maxFileBytes = static_cast<std::size_t>(
            args.getInt("cap", static_cast<i64>(2 * kMiB)));
        config.seed = static_cast<u64>(args.getInt("seed", 2023));
    }
    return config;
}

/**
 * Machine-readable telemetry record for one bench run.
 *
 * Scans argv itself for `--json <path>` / `--json=<path>` so binaries
 * that do not otherwise parse flags still emit telemetry. write() is a
 * no-op when the flag is absent, so mains call it unconditionally.
 */
class BenchReport
{
  public:
    BenchReport(std::string benchmark_id, int argc,
                const char *const *argv)
        : id_(std::move(benchmark_id))
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--json=", 0) == 0)
                path_ = arg.substr(7);
            else if (arg == "--json" && i + 1 < argc)
                path_ = argv[++i];
        }
    }

    bool enabled() const { return !path_.empty(); }
    const std::string &path() const { return path_; }

    /** Records a configuration input (suite size, placement, ...). */
    void
    config(const std::string &key, obs::JsonValue value)
    {
        config_.set(key, std::move(value));
    }

    /** Records a measured output (throughput, speedup, cycles, ...). */
    void
    metric(const std::string &key, obs::JsonValue value)
    {
        metrics_.set(key, std::move(value));
    }

    /** Accumulates a PU counter snapshot into the record. */
    void
    counters(const obs::CounterSnapshot &snapshot)
    {
        counters_.merge(snapshot);
    }

    /** Writes the record to --json's path (no-op without the flag). */
    Status
    write() const
    {
        if (!enabled())
            return Status::okStatus();
        obs::JsonValue record = obs::JsonValue::object();
        record.set("benchmark", id_);
        record.set("schema_version", u64{1});
        record.set("config", config_);
        record.set("metrics", metrics_);
        obs::JsonValue snapshot_json = counters_.toJson();
        record.set("counters", snapshot_json.at("counters"));
        record.set("histograms", snapshot_json.at("histograms"));
        std::ofstream out(path_, std::ios::binary);
        if (!out)
            return Status::io("cannot open report file: " + path_);
        out << record.dump(1) << '\n';
        if (!out)
            return Status::io("short write to report file: " + path_);
        std::printf("\n[telemetry] wrote %s\n", path_.c_str());
        return Status::okStatus();
    }

  private:
    std::string id_;
    std::string path_;
    obs::JsonValue config_ = obs::JsonValue::object();
    obs::JsonValue metrics_ = obs::JsonValue::object();
    obs::CounterSnapshot counters_;
};

} // namespace cdpu::bench

#endif // CDPU_BENCH_BENCH_COMMON_H_
