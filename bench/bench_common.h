/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 */

#ifndef CDPU_BENCH_BENCH_COMMON_H_
#define CDPU_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "common/cli.h"
#include "hyperbench/suite_generator.h"

namespace cdpu::bench
{

/** Prints the standard bench banner. */
inline void
banner(const std::string &title, const std::string &paper_reference)
{
    std::printf("=======================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_reference.c_str());
    std::printf("=======================================================\n");
}

/** Standard suite configuration, overridable via --files / --cap. */
inline hcb::SuiteConfig
suiteConfigFromArgs(int argc, const char *const *argv)
{
    CliArgs args;
    hcb::SuiteConfig config;
    if (args.parse(argc, argv, {"files", "cap", "seed"})) {
        config.filesPerSuite =
            static_cast<std::size_t>(args.getInt("files", 48));
        config.maxFileBytes = static_cast<std::size_t>(
            args.getInt("cap", static_cast<i64>(2 * kMiB)));
        config.seed = static_cast<u64>(args.getInt("seed", 2023));
    }
    return config;
}

} // namespace cdpu::bench

#endif // CDPU_BENCH_BENCH_COMMON_H_
