/**
 * @file
 * Figure 6: call-size distribution of popular open-source compression
 * benchmarks (Silesia, Canterbury, Calgary, SnappyFiles), whose whole
 * files are the "calls", vs the fleet — the paper's argument that
 * existing benchmarks are unrepresentative (256x median gap).
 *
 * The corpora themselves are not vendored; their public per-file sizes
 * are (approximate published metadata), which is all this figure uses.
 */

#include "bench_common.h"
#include "common/histogram.h"
#include "common/table.h"
#include "fleet/fleet_model.h"

using namespace cdpu;

namespace
{

/** Approximate file sizes (bytes) of the four public corpora. */
std::vector<std::size_t>
openSourceBenchmarkFileSizes()
{
    return {
        // Silesia (12 files, ~212 MB total).
        10192446, 20971520, 51220480, 10085684, 21504000, 16013283,
        7020521, 6627202, 6256384, 10027008, 33553445, 8474240,
        // Canterbury (11 small files).
        152089, 125179, 24603, 11150, 3721, 1029744, 426754, 481861,
        513216, 38240, 4227,
        // Calgary (14 files).
        111261, 768771, 610856, 102400, 377109, 21504, 246814, 53161,
        82199, 513216, 39611, 71646, 49379, 93695,
        // Snappy testdata (~10 files).
        152089, 129301, 100000, 102400, 400000, 512000, 10192446,
        20631, 42113, 11150,
    };
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Open-source benchmark call sizes vs the fleet",
                  "Figure 6 and Section 3.7");

    bench::BenchReport report("fig06_oss_call_sizes", argc, argv);
    WeightedHistogram oss;
    for (std::size_t size : openSourceBenchmarkFileSizes())
        oss.add(ceilLog2(size), static_cast<double>(size));

    fleet::FleetModel fleet;
    const WeightedHistogram &fleet_sizes = fleet.callSizeDistribution(
        {fleet::FleetCodec::snappy, fleet::Direction::compress});

    TablePrinter table(
        {"ceil(lg2(B))", "Open-source cum %", "Fleet Snappy-C cum %"});
    for (int bin = 10; bin <= 26; ++bin) {
        auto cum_at = [bin](const WeightedHistogram &histogram) {
            double cum = 0;
            for (const auto &point : histogram.cdf())
                if (point.x <= bin)
                    cum = point.cumFraction;
            return cum;
        };
        table.addRow({std::to_string(bin),
                      TablePrinter::percent(cum_at(oss), 0),
                      TablePrinter::percent(cum_at(fleet_sizes), 0)});
    }
    std::printf("%s\n", table.render().c_str());

    double oss_median = std::pow(2.0, oss.quantile(0.5));
    double fleet_median = std::pow(2.0, fleet_sizes.quantile(0.5));
    std::printf("Byte-weighted median call: open-source %.1f MiB vs "
                "fleet %.0f KiB -> %.0fx gap (paper: ~256x).\n",
                oss_median / (1 << 20), fleet_median / 1024,
                oss_median / fleet_median);
    report.metric("oss_median_bytes", oss_median);
    report.metric("fleet_median_bytes", fleet_median);
    report.metric("median_gap", oss_median / fleet_median);
    if (auto status = report.write(); !status.ok()) {
        std::fprintf(stderr, "%s\n", status.toString().c_str());
        return 1;
    }
    return 0;
}
