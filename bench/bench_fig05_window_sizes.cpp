/**
 * @file
 * Figure 5: ZStd window-size distributions in the fleet, byte-
 * weighted, with the Section 3.6 32-KiB observation (half the calls
 * exceed what a z15-class 32 KiB on-chip window could serve).
 */

#include "bench_common.h"
#include "common/table.h"
#include "fleet/reports.h"

using namespace cdpu;
using namespace cdpu::fleet;

int
main(int argc, char **argv)
{
    bench::banner("ZStd window-size distributions",
                  "Figure 5 and Section 3.6");

    bench::BenchReport report("fig05_window_sizes", argc, argv);
    FleetModel model;
    GwpSampler sampler(model, 505);
    auto records = sampler.sampleFinalMonth(150000);

    WeightedHistogram compress =
        windowSizeHistogram(records, Direction::compress);
    WeightedHistogram decompress =
        windowSizeHistogram(records, Direction::decompress);

    TablePrinter table({"lg2(window)", "ZSTD-C cum %", "ZSTD-D cum %"});
    for (int bin = 10; bin <= 24; ++bin) {
        auto cum_at = [bin](const WeightedHistogram &histogram) {
            double cum = 0;
            for (const auto &point : histogram.cdf())
                if (point.x <= bin)
                    cum = point.cumFraction;
            return cum;
        };
        table.addRow({std::to_string(bin),
                      TablePrinter::percent(cum_at(compress), 0),
                      TablePrinter::percent(cum_at(decompress), 0)});
    }
    std::printf("%s\n", table.render().c_str());

    double beyond_32k = 0;
    for (const auto &point : compress.cdf())
        if (point.x <= 15)
            beyond_32k = point.cumFraction;
    std::printf("Compression windows <= 32 KiB: %s (paper: ~50%%); a "
                "32 KiB on-accelerator window (IBM z15) could not "
                "serve the other %s of calls — the argument for the "
                "off-chip history fallback (Section 3.6).\n",
                TablePrinter::percent(beyond_32k).c_str(),
                TablePrinter::percent(1 - beyond_32k).c_str());
    std::printf("Decompression median window: 2^%.0f bytes "
                "(paper: 1 MiB).\n",
                decompress.quantile(0.5));
    report.metric("compress_windows_le_32k", beyond_32k);
    report.metric("decompress_median_window_log2",
                  decompress.quantile(0.5));
    if (auto status = report.write(); !status.ok()) {
        std::fprintf(stderr, "%s\n", status.toString().c_str());
        return 1;
    }
    return 0;
}
