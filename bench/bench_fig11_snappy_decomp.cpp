/**
 * @file
 * Figure 11: Snappy decompression CDPU speedup vs Xeon across
 * placements and history SRAM sizes, with normalized area.
 */

#include "bench_common.h"
#include "bench_dse_common.h"
#include "common/table.h"
#include "dse/figure_tables.h"

using namespace cdpu;

int
main(int argc, char **argv)
{
    bench::banner("Snappy decompression design-space exploration",
                  "Figure 11 and Section 6.2");

    hcb::SuiteConfig suite_config =
        bench::suiteConfigFromArgs(argc, argv);
    fleet::FleetModel fleet;
    hcb::SuiteGenerator generator(fleet, suite_config);
    hcb::Suite suite = generator.generate(
        codec::CodecId::snappy, codec::Direction::decompress);
    std::printf("Suite: %zu files, %s uncompressed\n\n",
                suite.files.size(),
                TablePrinter::bytes(suite.totalBytes()).c_str());

    dse::SweepRunner runner(suite);
    std::printf("%s\n", dse::figure11(runner).c_str());

    dse::DsePoint flagship = dse::flagshipPoint(runner);
    std::printf("Flagship (RoCC, 64K): %.1fx vs Xeon, %.2f GB/s "
                "accelerated, %.3f mm^2 = %.1f%% of a Xeon core tile.\n"
                "Paper: 10.4x (11.4 GB/s vs 1.1 GB/s), 0.431 mm^2 = "
                "2.4%% of a Xeon core.\n",
                flagship.speedup(),
                flagship.accelGBps(runner.totalBytes()),
                flagship.areaMm2,
                100 * flagship.areaMm2 / hw::kXeonCoreTileMm2);

    bench::BenchReport report("fig11_snappy_decomp", argc, argv);
    report.config("files", static_cast<u64>(suite.files.size()));
    report.config("cap_bytes",
                  static_cast<u64>(suite_config.maxFileBytes));
    report.config("seed", suite_config.seed);
    bench::recordDsePoint(report, flagship, runner.totalBytes());
    return bench::finishReport(report);
}
