/**
 * @file
 * Ablation: speedup vs call size across placements — the quantitative
 * version of Section 3.5.1's argument that per-invocation overhead is
 * only amortized over the payload, so the fleet's small calls decide
 * where the CDPU can live.
 */

#include "bench_common.h"
#include "baseline/xeon_cost_model.h"
#include "cdpu/snappy_pu.h"
#include "common/table.h"
#include "corpus/generators.h"
#include "snappy/compress.h"

using namespace cdpu;

int
main(int argc, char **argv)
{
    bench::banner("Ablation: speedup vs call size by placement",
                  "Section 3.5.1 (call granularity vs placement)");

    bench::BenchReport report("ablation_call_size", argc, argv);
    baseline::XeonCostModel xeon;
    TablePrinter table({"Call size", "RoCC", "Chiplet", "PCIeNoCache"});

    for (std::size_t size :
         {4 * kKiB, 16 * kKiB, 64 * kKiB, 256 * kKiB, 1 * kMiB,
          4 * kMiB}) {
        Rng rng(size);
        Bytes data = corpus::generateMixed(size, rng, 8 * kKiB);
        Bytes compressed = snappy::compress(data);
        double xeon_seconds =
            xeon.seconds(codec::CodecId::snappy,
                         codec::Direction::decompress, size);

        std::vector<std::string> row = {TablePrinter::bytes(size)};
        for (auto placement :
             {sim::Placement::rocc, sim::Placement::chiplet,
              sim::Placement::pcieNoCache}) {
            hw::CdpuConfig config;
            config.placement = placement;
            hw::SnappyDecompressorPU pu(config);
            auto result = pu.run(compressed);
            double speedup =
                xeon_seconds /
                result.value().seconds(config.clockGhz);
            report.metric(sim::placementName(placement) + "_" +
                              std::to_string(size / kKiB) +
                              "kib_speedup",
                          speedup);
            row.push_back(TablePrinter::num(speedup, 2) + "x");
        }
        table.addRow(std::move(row));
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nPCIe closes the gap only at multi-MiB calls; the "
                "fleet's median decompression call is ~100 KiB "
                "(Figure 3), which is why Figure 11 favors near-core "
                "placement.\n");
    if (auto status = report.write(); !status.ok()) {
        std::fprintf(stderr, "%s\n", status.toString().c_str());
        return 1;
    }
    return 0;
}
