/**
 * @file
 * Ablation: LZ77 hash-table geometry (paper parameters 5-8) —
 * associativity and hash function vs compression ratio and speedup
 * for the Snappy compressor, extending Figure 13's entries sweep.
 */

#include "bench_common.h"
#include "bench_dse_common.h"
#include "common/table.h"
#include "dse/figure_tables.h"

using namespace cdpu;

int
main(int argc, char **argv)
{
    bench::banner("Ablation: hash-table geometry",
                  "Section 5.8 parameters 5-8, extending Figure 13");

    fleet::FleetModel fleet;
    hcb::SuiteGenerator generator(
        fleet, bench::suiteConfigFromArgs(argc, argv));
    hcb::Suite suite = generator.generate(
        codec::CodecId::snappy, codec::Direction::compress);
    dse::SweepRunner runner(suite);

    auto fn_name = [](lz77::HashFunction fn) {
        switch (fn) {
          case lz77::HashFunction::multiplicative: return "mult";
          case lz77::HashFunction::xorShift: return "xorshift";
          case lz77::HashFunction::fibonacci64: return "fib64";
        }
        return "?";
    };

    bench::BenchReport report("ablation_hash_geometry", argc, argv);
    TablePrinter table({"Entries", "Ways", "Hash fn", "Speedup",
                        "Ratio vs SW", "Area mm^2"});
    for (unsigned log2_entries : {9u, 12u, 14u}) {
        for (unsigned ways : {1u, 2u, 4u}) {
            for (auto fn : {lz77::HashFunction::multiplicative,
                            lz77::HashFunction::xorShift}) {
                hw::CdpuConfig config;
                config.hashTable.log2Entries = log2_entries;
                config.hashTable.ways = ways;
                config.hashTable.hashFunction = fn;
                dse::DsePoint point = runner.run(config);
                std::string key = "ht" +
                                  std::to_string(log2_entries) + "_w" +
                                  std::to_string(ways) + "_" +
                                  fn_name(fn);
                report.metric(key + "_speedup", point.speedup());
                report.metric(key + "_ratio_vs_sw", point.ratioVsSw());
                table.addRow(
                    {"2^" + std::to_string(log2_entries),
                     std::to_string(ways), fn_name(fn),
                     TablePrinter::num(point.speedup(), 2) + "x",
                     TablePrinter::num(point.ratioVsSw(), 3),
                     TablePrinter::num(point.areaMm2, 3)});
            }
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nMore ways recover the ratio lost to a small table "
                "at a fraction of the area of more entries; the hash "
                "function matters far less than the geometry.\n");
    return bench::finishReport(report);
}
