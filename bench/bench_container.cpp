/**
 * @file
 * Block-parallel container decode: block size x workers x codec.
 *
 * Sweeps container::decodeParallel over every registry codec, a set of
 * block sizes, and a worker ladder, against one mixed-class input. The
 * software sweep answers the format's core tuning question — how small
 * can blocks get before per-block overhead eats the parallelism — and
 * the --sim-pus leg answers the paper-side version: N CDPU PUs
 * (Section 5.8's multi-PU design point) decoding one container stream,
 * with per-block cycle costs measured on the real PU models and
 * scheduled by sim::simulateContainerDecode.
 *
 * Every sweep point is differentially checked against the sequential
 * reference (bytes + work counters) before its timing is reported.
 *
 * Honesty: the committed BENCH_container.json records host_cpus and
 * wall-clock endpoints, and the speedup headline follows
 * container::speedupHeadline — on a single-core host the record says
 * core_bound=true and carries NO speedup claim, because time-sliced
 * workers cannot demonstrate parallelism (the BENCH_serve.json caveat,
 * promoted to policy and regression-tested in container_test).
 *
 * Flags: --bytes N --seed S --workers MAX --codec NAME --sim-pus MAX
 * --json PATH.
 */

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cdpu/flate_pu.h"
#include "cdpu/snappy_pu.h"
#include "cdpu/zstd_pu.h"
#include "container/container.h"
#include "corpus/generators.h"
#include "sim/container_scenario.h"

namespace cdpu
{
namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Per-block decode cycles on the matching CDPU PU model; empty when
 *  no PU decodes this codec (gipfeli has no hardware unit). */
std::vector<sim::Tick>
puBlockCycles(codec::CodecId id, const container::FrameIndex &index,
              ByteSpan frame)
{
    std::vector<sim::Tick> cycles;
    hw::CdpuConfig config;
    hw::SnappyDecompressorPU snappy_pu{config};
    hw::ZstdDecompressorPU zstd_pu{config};
    hw::FlateDecompressorPU flate_pu{config};
    for (const container::BlockEntry &entry : index.blocks) {
        ByteSpan block = frame.subspan(
            index.dataStart + static_cast<std::size_t>(entry.offset),
            static_cast<std::size_t>(entry.compSize));
        Result<hw::PuResult> result = [&]() -> Result<hw::PuResult> {
            switch (id) {
              case codec::CodecId::snappy: return snappy_pu.run(block);
              case codec::CodecId::zstdlite: return zstd_pu.run(block);
              case codec::CodecId::flatelite:
                return flate_pu.run(block);
              default:
                return Status::unsupported("no PU for this codec");
            }
        }();
        if (!result.ok())
            return {};
        cycles.push_back(result.value().cycles);
    }
    return cycles;
}

int
run(int argc, char **argv)
{
    bench::banner(
        "Container decode: block size x workers x codec",
        "Section 5.8 multi-PU scaling (block-parallel container)");

    CliArgs args;
    std::size_t total_bytes = 4 * kMiB;
    u64 seed = 2023;
    unsigned max_workers = 8;
    unsigned max_sim_pus = 16;
    std::vector<codec::CodecId> codecs = codec::allCodecs();
    if (args.parse(argc, argv,
                   {"bytes", "seed", "workers", "codec", "sim-pus",
                    "json"})) {
        total_bytes = static_cast<std::size_t>(
            args.getInt("bytes", static_cast<i64>(total_bytes)));
        seed = static_cast<u64>(args.getInt("seed", 2023));
        max_workers = static_cast<unsigned>(args.getInt("workers", 8));
        max_sim_pus =
            static_cast<unsigned>(args.getInt("sim-pus", 16));
        std::string codec_name = args.getString("codec", "");
        if (!codec_name.empty()) {
            auto id = codec::codecFromName(codec_name);
            if (!id.ok()) {
                std::fprintf(stderr, "--codec %s: %s\n",
                             codec_name.c_str(),
                             id.status().message().c_str());
                return 1;
            }
            codecs = {id.value()};
        }
    }
    max_workers = std::max(1u, max_workers);

    Rng rng(seed);
    const Bytes input = corpus::generateMixed(total_bytes, rng);
    const std::size_t block_sizes[] = {16 * kKiB, 128 * kKiB, 1 * kMiB};

    const std::string wall_clock_start = bench::wallClockUtc();
    const unsigned host_cpus = std::thread::hardware_concurrency();

    bench::BenchReport report("container_decode", argc, argv);
    report.config("input_bytes", u64{input.size()});
    report.config("seed", u64{seed});
    report.config("host_cpus", u64{host_cpus});
    report.config("max_workers", u64{max_workers});
    report.config("wall_clock_start", wall_clock_start);
    obs::JsonValue codecs_json = obs::JsonValue::array();
    for (codec::CodecId id : codecs)
        codecs_json.push(bench::codecCapsJson(id));
    report.config("codecs", std::move(codecs_json));

    std::printf("\ninput: %.1f MiB   host cpus: %u\n\n",
                static_cast<double>(input.size()) /
                    static_cast<double>(kMiB),
                host_cpus);
    std::printf("%10s %10s %8s %10s %12s %10s %8s\n", "codec",
                "block", "workers", "ratio", "MB/s", "blocks",
                "steals");

    double mb_per_sec_1w = 0.0;
    double mb_per_sec_best = 0.0;
    obs::JsonValue sweep = obs::JsonValue::array();
    for (codec::CodecId id : codecs) {
        for (std::size_t block_bytes : block_sizes) {
            container::WriteOptions wopts;
            wopts.blockBytes = block_bytes;
            Bytes frame;
            Status ws = container::write(id, input, wopts, frame);
            if (!ws.ok()) {
                std::fprintf(stderr, "write failed: %s\n",
                             ws.message().c_str());
                return 1;
            }

            // Correctness gate before timing: the sequential reference
            // must round-trip, and every parallel point must agree
            // with it byte-for-byte and counter-for-counter.
            Bytes reference;
            container::DecodeReport reference_report;
            Status rs = container::decodeSequential(
                frame, reference, {}, &reference_report);
            if (!rs.ok() || reference != input) {
                std::fprintf(stderr,
                             "sequential reference diverged: %s\n",
                             rs.toString().c_str());
                return 1;
            }

            for (unsigned workers = 1; workers <= max_workers;
                 workers *= 2) {
                Bytes out;
                container::DecodeReport decode_report;
                const auto start = std::chrono::steady_clock::now();
                Status ds = container::decodeParallel(
                    frame, workers, out, {}, &decode_report);
                const double seconds = secondsSince(start);
                if (!ds.ok() || out != reference ||
                    decode_report.work.counters !=
                        reference_report.work.counters) {
                    std::fprintf(
                        stderr,
                        "parallel decode diverged at %u workers\n",
                        workers);
                    return 1;
                }

                const double mb_per_sec =
                    static_cast<double>(input.size()) / 1e6 / seconds;
                if (workers == 1) {
                    mb_per_sec_1w =
                        std::max(mb_per_sec_1w, mb_per_sec);
                } else {
                    mb_per_sec_best =
                        std::max(mb_per_sec_best, mb_per_sec);
                }
                const u64 steals =
                    decode_report.runtime.at("container.steals");
                std::printf(
                    "%10s %10zu %8u %10.3f %12.1f %10llu %8llu\n",
                    codec::codecName(id).c_str(), block_bytes,
                    workers,
                    static_cast<double>(frame.size()) /
                        static_cast<double>(input.size()),
                    mb_per_sec,
                    static_cast<unsigned long long>(
                        decode_report.blocks),
                    static_cast<unsigned long long>(steals));

                obs::JsonValue point = obs::JsonValue::object();
                point.set("codec", codec::codecName(id));
                point.set("block_bytes", u64{block_bytes});
                point.set("workers", u64{workers});
                point.set("core_bound", workers > host_cpus);
                point.set("seconds", seconds);
                point.set("mb_per_sec", mb_per_sec);
                point.set("frame_bytes", u64{frame.size()});
                point.set("blocks", u64{decode_report.blocks});
                point.set("steals", u64{steals});
                sweep.push(std::move(point));

                if (workers == 1 && block_bytes == block_sizes[0] &&
                    id == codecs.front())
                    report.counters(decode_report.work);
            }
        }
    }

    // Multi-PU scenario: N CDPU PUs decode the 128 KiB-block container
    // of each hardware-backed codec; per-block costs come from the PU
    // models themselves, the schedule from the sim scenario.
    obs::JsonValue sim_json = obs::JsonValue::array();
    std::printf("\n%10s %8s %14s %10s %12s\n", "codec", "pus",
                "makespan", "speedup", "utilization");
    for (codec::CodecId id : codecs) {
        container::WriteOptions wopts;
        wopts.blockBytes = 128 * kKiB;
        Bytes frame;
        if (!container::write(id, input, wopts, frame).ok())
            continue;
        Result<container::FrameIndex> index =
            container::parseIndex(frame);
        if (!index.ok())
            continue;
        sim::ContainerScenario scenario;
        scenario.blockCycles =
            puBlockCycles(id, index.value(), frame);
        if (scenario.blockCycles.empty())
            continue; // No PU decodes this codec.
        scenario.dispatchCycles = 64;
        for (unsigned pus = 1; pus <= max_sim_pus; pus *= 2) {
            scenario.pus = pus;
            sim::ContainerSimReport sim_report =
                sim::simulateContainerDecode(scenario);
            std::printf("%10s %8u %14llu %10.2f %12.2f\n",
                        codec::codecName(id).c_str(), pus,
                        static_cast<unsigned long long>(
                            sim_report.makespan),
                        sim_report.speedup, sim_report.utilization);
            obs::JsonValue point = obs::JsonValue::object();
            point.set("codec", codec::codecName(id));
            point.set("pus", u64{pus});
            point.set("blocks", u64{scenario.blockCycles.size()});
            point.set("makespan_cycles", u64{sim_report.makespan});
            point.set("speedup", sim_report.speedup);
            point.set("utilization", sim_report.utilization);
            sim_json.push(std::move(point));
        }
    }

    obs::JsonValue metrics = obs::JsonValue::object();
    container::speedupHeadline(metrics, host_cpus, mb_per_sec_1w,
                               mb_per_sec_best);
    report.metric("sweep", std::move(sweep));
    report.metric("sim_pus", std::move(sim_json));
    report.metric("mb_per_sec_1w", metrics.at("mb_per_sec_1w"));
    report.metric("mb_per_sec_best", metrics.at("mb_per_sec_best"));
    report.metric("core_bound", metrics.at("core_bound"));
    if (metrics.has("speedup_best")) {
        report.metric("speedup_best", metrics.at("speedup_best"));
        std::printf("\nbest speedup over 1 worker: %.2fx\n",
                    metrics.at("speedup_best").asDouble());
    } else {
        std::printf("\nhost has %u cpu(s): core_bound record, no "
                    "speedup headline\n",
                    host_cpus);
    }
    report.metric("wall_clock_end", bench::wallClockUtc());
    Status written = report.write();
    if (!written.ok()) {
        std::fprintf(stderr, "%s\n", written.message().c_str());
        return 1;
    }
    return 0;
}

} // namespace
} // namespace cdpu

int
main(int argc, char **argv)
{
    return cdpu::run(argc, argv);
}
