/**
 * @file
 * Figure 12: Snappy compression CDPU speedup, compression ratio vs
 * software, and area across placements and history SRAM sizes.
 */

#include "bench_common.h"
#include "bench_dse_common.h"
#include "common/table.h"
#include "dse/figure_tables.h"

using namespace cdpu;

int
main(int argc, char **argv)
{
    bench::banner("Snappy compression design-space exploration",
                  "Figure 12 and Section 6.3");

    hcb::SuiteConfig suite_config =
        bench::suiteConfigFromArgs(argc, argv);
    fleet::FleetModel fleet;
    hcb::SuiteGenerator generator(fleet, suite_config);
    hcb::Suite suite = generator.generate(
        codec::CodecId::snappy, codec::Direction::compress);
    std::printf("Suite: %zu files, %s uncompressed\n\n",
                suite.files.size(),
                TablePrinter::bytes(suite.totalBytes()).c_str());

    dse::SweepRunner runner(suite);
    std::printf("%s\n", dse::figure12(runner).c_str());

    dse::DsePoint flagship = dse::flagshipPoint(runner);
    std::printf("Flagship (RoCC, 64K, 2^14 hash): %.1fx vs Xeon, "
                "%.2f GB/s, ratio vs SW %.3f, %.3f mm^2 = %.1f%% of a "
                "Xeon core.\nPaper: 16.2x (5.84 GB/s vs 0.36 GB/s), "
                "ratio 1.011x SW, 0.851 mm^2 = 4.7%%.\n",
                flagship.speedup(),
                flagship.accelGBps(runner.totalBytes()),
                flagship.ratioVsSw(), flagship.areaMm2,
                100 * flagship.areaMm2 / hw::kXeonCoreTileMm2);

    bench::BenchReport report("fig12_snappy_comp", argc, argv);
    report.config("files", static_cast<u64>(suite.files.size()));
    report.config("cap_bytes",
                  static_cast<u64>(suite_config.maxFileBytes));
    report.config("seed", suite_config.seed);
    bench::recordDsePoint(report, flagship, runner.totalBytes());
    return bench::finishReport(report);
}
