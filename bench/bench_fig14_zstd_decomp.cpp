/**
 * @file
 * Figure 14 + Section 6.4: ZStd decompression CDPU sweep across
 * placements/history SRAM, plus the Huffman speculation sweep.
 */

#include "bench_common.h"
#include "bench_dse_common.h"
#include "common/table.h"
#include "dse/figure_tables.h"

using namespace cdpu;

int
main(int argc, char **argv)
{
    bench::banner("ZStd decompression design-space exploration",
                  "Figure 14 and Section 6.4");

    hcb::SuiteConfig suite_config =
        bench::suiteConfigFromArgs(argc, argv);
    fleet::FleetModel fleet;
    hcb::SuiteGenerator generator(fleet, suite_config);
    hcb::Suite suite = generator.generate(
        codec::CodecId::zstdlite, codec::Direction::decompress);
    std::printf("Suite: %zu files, %s uncompressed\n\n",
                suite.files.size(),
                TablePrinter::bytes(suite.totalBytes()).c_str());

    dse::SweepRunner runner(suite);
    std::printf("%s\n", dse::figure14(runner).c_str());

    dse::DsePoint flagship = dse::flagshipPoint(runner);
    std::printf("Flagship (RoCC, 64K, 16 spec): %.1fx vs Xeon, "
                "%.2f GB/s, %.2f mm^2.\nPaper: 4.2x (3.95 GB/s vs "
                "0.94 GB/s), 1.9 mm^2; speculation 4/16/32 -> "
                "2.11x/4.2x/5.64x.\n",
                flagship.speedup(),
                flagship.accelGBps(runner.totalBytes()),
                flagship.areaMm2);

    bench::BenchReport report("fig14_zstd_decomp", argc, argv);
    report.config("files", static_cast<u64>(suite.files.size()));
    report.config("cap_bytes",
                  static_cast<u64>(suite_config.maxFileBytes));
    report.config("seed", suite_config.seed);
    bench::recordDsePoint(report, flagship, runner.totalBytes());
    return bench::finishReport(report);
}
