/**
 * @file
 * Ablation: generator unit reuse across algorithms (Section 3.4).
 *
 * Six PUs — {Snappy, Flate, ZStd} x {compress, decompress} — are
 * composed from one unit library (LZ77 encoder/decoder, Huffman
 * expander/compressor, FSE expander/compressor). The table shows each
 * instance's composition, area, and modeled throughput on the same
 * data: "transitioning from Flate to ZStd would mostly entail adding
 * an FSE module".
 */

#include "bench_common.h"
#include "cdpu/area_model.h"
#include "cdpu/flate_pu.h"
#include "cdpu/snappy_pu.h"
#include "cdpu/zstd_pu.h"
#include "common/table.h"
#include "corpus/generators.h"
#include "flatelite/compress.h"
#include "snappy/compress.h"
#include "zstdlite/compress.h"

using namespace cdpu;

int
main(int argc, char **argv)
{
    bench::banner("Ablation: unit reuse across algorithm PUs",
                  "Section 3.4 (agile CDPU generator)");

    bench::BenchReport report("ablation_generator_reuse", argc, argv);
    Rng rng(2026);
    Bytes data = corpus::generateMixed(1 * kMiB, rng, 16 * kKiB);
    hw::CdpuConfig config;

    Bytes snappy_c = snappy::compress(data);
    auto flate_c = flatelite::compress(data);
    auto zstd_c = zstdlite::compress(data);

    auto gbps = [&](const hw::PuResult &result, std::size_t bytes) {
        return static_cast<double>(bytes) /
               (result.seconds(config.clockGhz) * 1e9);
    };

    TablePrinter table({"PU", "Units composed", "Area mm^2", "GB/s"});
    auto add = [&](const char *pu, const char *units, double area,
                   double throughput) {
        std::string key(pu);
        for (char &c : key)
            if (c == ' ')
                c = '_';
        report.metric(key + "_area_mm2", area);
        report.metric(key + "_gbps", throughput);
        table.addRow({pu, units, TablePrinter::num(area, 3),
                      TablePrinter::num(throughput, 2)});
    };

    hw::SnappyDecompressorPU sd(config);
    add("Snappy decompress", "LZ77-D",
        hw::snappyDecompressorAreaMm2(config),
        gbps(sd.run(snappy_c).value(), data.size()));

    hw::FlateDecompressorPU fd(config);
    add("Flate decompress", "LZ77-D + Huff-E",
        hw::flateDecompressorAreaMm2(config),
        gbps(fd.run(flate_c.value()).value(), data.size()));

    hw::ZstdDecompressorPU zd(config);
    add("ZStd decompress", "LZ77-D + Huff-E + FSE-E",
        hw::zstdDecompressorAreaMm2(config),
        gbps(zd.run(zstd_c.value()).value(), data.size()));

    hw::SnappyCompressorPU sc(config);
    add("Snappy compress", "LZ77-C",
        hw::snappyCompressorAreaMm2(config),
        gbps(sc.run(data).value(), data.size()));

    hw::FlateCompressorPU fc(config);
    add("Flate compress", "LZ77-C + Huff-C",
        hw::flateCompressorAreaMm2(config),
        gbps(fc.run(data).value(), data.size()));

    hw::ZstdCompressorPU zc(config);
    add("ZStd compress", "LZ77-C + Huff-C + FSE-C",
        hw::zstdCompressorAreaMm2(config),
        gbps(zc.run(data).value(), data.size()));

    std::printf("%s", table.render().c_str());
    std::printf("\nEach added entropy stage costs area and throughput "
                "but buys compression ratio — the exact modularity "
                "the paper's Chisel generator provides (Sections 5.2-"
                "5.7).\n");
    if (auto status = report.write(); !status.ok()) {
        std::fprintf(stderr, "%s\n", status.toString().c_str());
        return 1;
    }
    return 0;
}
