/**
 * @file
 * Ablation: generator unit reuse across algorithms (Section 3.4).
 *
 * Six PUs — {Snappy, Flate, ZStd} x {compress, decompress} — are
 * composed from one unit library (LZ77 encoder/decoder, Huffman
 * expander/compressor, FSE expander/compressor). The table shows each
 * instance's composition, area, and modeled throughput on the same
 * data: "transitioning from Flate to ZStd would mostly entail adding
 * an FSE module".
 */

#include "bench_common.h"
#include "cdpu/area_model.h"
#include "cdpu/flate_pu.h"
#include "cdpu/snappy_pu.h"
#include "cdpu/zstd_pu.h"
#include "common/table.h"
#include "corpus/generators.h"
#include "flatelite/compress.h"
#include "snappy/compress.h"
#include "zstdlite/compress.h"

using namespace cdpu;

int
main()
{
    bench::banner("Ablation: unit reuse across algorithm PUs",
                  "Section 3.4 (agile CDPU generator)");

    Rng rng(2026);
    Bytes data = corpus::generateMixed(1 * kMiB, rng, 16 * kKiB);
    hw::CdpuConfig config;

    Bytes snappy_c = snappy::compress(data);
    auto flate_c = flatelite::compress(data);
    auto zstd_c = zstdlite::compress(data);

    auto gbps = [&](const hw::PuResult &result, std::size_t bytes) {
        return static_cast<double>(bytes) /
               (result.seconds(config.clockGhz) * 1e9);
    };

    TablePrinter table({"PU", "Units composed", "Area mm^2", "GB/s"});

    hw::SnappyDecompressorPU sd(config);
    table.addRow({"Snappy decompress", "LZ77-D",
                  TablePrinter::num(
                      hw::snappyDecompressorAreaMm2(config), 3),
                  TablePrinter::num(
                      gbps(sd.run(snappy_c).value(), data.size()), 2)});

    hw::FlateDecompressorPU fd(config);
    table.addRow(
        {"Flate decompress", "LZ77-D + Huff-E",
         TablePrinter::num(hw::flateDecompressorAreaMm2(config), 3),
         TablePrinter::num(
             gbps(fd.run(flate_c.value()).value(), data.size()), 2)});

    hw::ZstdDecompressorPU zd(config);
    table.addRow(
        {"ZStd decompress", "LZ77-D + Huff-E + FSE-E",
         TablePrinter::num(hw::zstdDecompressorAreaMm2(config), 3),
         TablePrinter::num(
             gbps(zd.run(zstd_c.value()).value(), data.size()), 2)});

    hw::SnappyCompressorPU sc(config);
    table.addRow({"Snappy compress", "LZ77-C",
                  TablePrinter::num(
                      hw::snappyCompressorAreaMm2(config), 3),
                  TablePrinter::num(
                      gbps(sc.run(data).value(), data.size()), 2)});

    hw::FlateCompressorPU fc(config);
    table.addRow(
        {"Flate compress", "LZ77-C + Huff-C",
         TablePrinter::num(hw::flateCompressorAreaMm2(config), 3),
         TablePrinter::num(gbps(fc.run(data).value(), data.size()),
                           2)});

    hw::ZstdCompressorPU zc(config);
    table.addRow(
        {"ZStd compress", "LZ77-C + Huff-C + FSE-C",
         TablePrinter::num(hw::zstdCompressorAreaMm2(config), 3),
         TablePrinter::num(gbps(zc.run(data).value(), data.size()),
                           2)});

    std::printf("%s", table.render().c_str());
    std::printf("\nEach added entropy stage costs area and throughput "
                "but buys compression ratio — the exact modularity "
                "the paper's Chisel generator provides (Sections 5.2-"
                "5.7).\n");
    return 0;
}
