/**
 * @file
 * Google-benchmark microbenchmarks for the codec kernels on the host
 * machine: Snappy/ZstdLite compress+decompress across data classes,
 * plus the Huffman, FSE, and LZ77 stages in isolation (decode-only
 * variants isolate the word-wide fast paths). Every kernel reports an
 * MB/s rate counter alongside google-benchmark's bytes_per_second, and
 * the hot-path benchmarks attach mem::kernelStats() deltas (wild-copy
 * bytes, refills, fast-path hits) as per-iteration counters.
 *
 * These measure THIS machine (the honest lzbench analogue); the
 * paper's Xeon numbers come from baseline::XeonCostModel and are
 * printed by the figure benches.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "codec/registry.h"
#include "codec/session.h"
#include "common/kernels.h"
#include "common/mem.h"
#include "common/varint.h"
#include "corpus/generators.h"
#include "fse/decoder.h"
#include "fse/encoder.h"
#include "huffman/decoder.h"
#include "huffman/encoder.h"
#include "lz77/match_finder.h"
#include "snappy/compress.h"
#include "snappy/decompress.h"
#include "transform/transform.h"
#include "zstdlite/compress.h"
#include "zstdlite/decompress.h"

namespace
{

using namespace cdpu;

Bytes
makeData(int cls_index, std::size_t size)
{
    Rng rng(42 + cls_index);
    auto classes = corpus::allDataClasses();
    return corpus::generate(classes[cls_index], size, rng);
}

/** Reports throughput as an explicit MB/s counter (1 MB = 1e6 bytes),
 *  in addition to google-benchmark's bytes_per_second. */
void
setThroughput(benchmark::State &state, std::size_t bytes_per_iter)
{
    auto total =
        static_cast<i64>(state.iterations() * bytes_per_iter);
    state.SetBytesProcessed(total);
    state.counters["MBps"] = benchmark::Counter(
        static_cast<double>(total) * 1e-6, benchmark::Counter::kIsRate);
}

/** Attaches the mem::kernelStats() delta accumulated across the timed
 *  loop as per-iteration counters. */
void
attachKernelCounters(benchmark::State &state,
                     const mem::KernelStats &before)
{
    const mem::KernelStats &now = mem::kernelStats();
    const double iters = static_cast<double>(state.iterations());
    if (iters == 0)
        return;
    auto per_iter = [&](u64 after_v, u64 before_v) {
        return static_cast<double>(after_v - before_v) / iters;
    };
    state.counters["wild_copy_bytes"] =
        per_iter(now.wildCopyBytes, before.wildCopyBytes);
    state.counters["fast_refills"] =
        per_iter(now.bitioFastRefills + now.bitioBackwardFastRefills,
                 before.bitioFastRefills +
                     before.bitioBackwardFastRefills);
    state.counters["slow_refills"] =
        per_iter(now.bitioSlowRefills + now.bitioBackwardSlowRefills,
                 before.bitioSlowRefills +
                     before.bitioBackwardSlowRefills);
    state.counters["snappy_fast_path_hits"] = per_iter(
        now.snappyFastLiterals + now.snappyFastCopies,
        before.snappyFastLiterals + before.snappyFastCopies);
}

void
BM_SnappyCompress(benchmark::State &state)
{
    Bytes data = makeData(static_cast<int>(state.range(0)), 256 * kKiB);
    for (auto _ : state) {
        Bytes out = snappy::compress(data);
        benchmark::DoNotOptimize(out.data());
    }
    setThroughput(state, data.size());
    state.SetLabel(corpus::dataClassName(
        corpus::allDataClasses()[state.range(0)]));
}
BENCHMARK(BM_SnappyCompress)->DenseRange(0, 8);

void
BM_SnappyDecompress(benchmark::State &state)
{
    Bytes data = makeData(static_cast<int>(state.range(0)), 256 * kKiB);
    Bytes compressed = snappy::compress(data);
    mem::KernelStats before = mem::kernelStats();
    for (auto _ : state) {
        auto out = snappy::decompress(compressed);
        benchmark::DoNotOptimize(out.value().data());
    }
    setThroughput(state, data.size());
    attachKernelCounters(state, before);
    state.SetLabel(corpus::dataClassName(
        corpus::allDataClasses()[state.range(0)]));
}
BENCHMARK(BM_SnappyDecompress)->DenseRange(0, 8);

/** Reference two-pass decode (element stream + replay), kept for the
 *  hardware model: the honest before/after comparison for the
 *  single-pass fast path above. */
void
BM_SnappyDecompressElementPath(benchmark::State &state)
{
    Bytes data = makeData(static_cast<int>(state.range(0)), 256 * kKiB);
    Bytes compressed = snappy::compress(data);
    std::size_t preamble = 0;
    (void)getVarint(compressed, preamble);
    u64 expected = snappy::uncompressedLength(compressed).value();
    for (auto _ : state) {
        std::vector<snappy::Element> elements;
        if (!snappy::decodeElements(compressed, preamble, expected,
                                    elements)
                 .ok())
            state.SkipWithError("decodeElements failed");
        Bytes out;
        if (!snappy::applyElements(compressed, elements, expected, out)
                 .ok())
            state.SkipWithError("applyElements failed");
        benchmark::DoNotOptimize(out.data());
    }
    setThroughput(state, data.size());
    state.SetLabel(corpus::dataClassName(
        corpus::allDataClasses()[state.range(0)]));
}
BENCHMARK(BM_SnappyDecompressElementPath)->DenseRange(0, 8);

void
BM_ZstdLiteCompress(benchmark::State &state)
{
    Bytes data = makeData(0, 256 * kKiB); // text
    zstdlite::CompressorConfig config;
    config.level = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto out = zstdlite::compress(data, config);
        benchmark::DoNotOptimize(out.value().data());
    }
    setThroughput(state, data.size());
}
BENCHMARK(BM_ZstdLiteCompress)->Arg(1)->Arg(3)->Arg(9)->Arg(19);

void
BM_ZstdLiteDecompress(benchmark::State &state)
{
    Bytes data = makeData(1, 256 * kKiB); // log
    auto compressed = zstdlite::compress(data);
    mem::KernelStats before = mem::kernelStats();
    for (auto _ : state) {
        auto out = zstdlite::decompress(compressed.value());
        benchmark::DoNotOptimize(out.value().data());
    }
    setThroughput(state, data.size());
    attachKernelCounters(state, before);
}
BENCHMARK(BM_ZstdLiteDecompress);

void
BM_Lz77Parse(benchmark::State &state)
{
    Bytes data = makeData(0, 256 * kKiB);
    lz77::MatchFinderConfig config;
    config.hashTable.log2Entries =
        static_cast<unsigned>(state.range(0));
    lz77::MatchFinder finder(config);
    for (auto _ : state) {
        lz77::Parse parse = finder.parse(data);
        benchmark::DoNotOptimize(parse.sequences.data());
    }
    setThroughput(state, data.size());
}
BENCHMARK(BM_Lz77Parse)->Arg(9)->Arg(14)->Arg(17);

void
BM_HuffmanRoundTrip(benchmark::State &state)
{
    Bytes data = makeData(0, 128 * kKiB);
    auto freqs = huffman::countFrequencies(data);
    auto table = huffman::buildCodeTable(freqs).value();
    auto decoder = huffman::Decoder::build(table).value();
    for (auto _ : state) {
        BitWriter writer;
        (void)huffman::encode(table, data, writer);
        Bytes stream = writer.finish();
        BitReader reader(stream);
        Bytes out;
        (void)decoder.decode(reader, data.size(), out);
        benchmark::DoNotOptimize(out.data());
    }
    setThroughput(state, data.size());
}
BENCHMARK(BM_HuffmanRoundTrip);

/** Decode-only: isolates the table walk + word-wide bit refills. */
void
BM_HuffmanDecode(benchmark::State &state)
{
    Bytes data = makeData(0, 128 * kKiB);
    auto freqs = huffman::countFrequencies(data);
    auto table = huffman::buildCodeTable(freqs).value();
    auto decoder = huffman::Decoder::build(table).value();
    BitWriter writer;
    (void)huffman::encode(table, data, writer);
    Bytes stream = writer.finish();
    mem::KernelStats before = mem::kernelStats();
    for (auto _ : state) {
        BitReader reader(stream);
        Bytes out;
        (void)decoder.decode(reader, data.size(), out);
        benchmark::DoNotOptimize(out.data());
    }
    setThroughput(state, data.size());
    attachKernelCounters(state, before);
}
BENCHMARK(BM_HuffmanDecode);

Bytes
makeSkewedSymbols()
{
    // Skewed 16-symbol stream.
    Rng rng(7);
    Bytes symbols;
    for (int i = 0; i < 64 * 1024; ++i) {
        double u = rng.uniform();
        symbols.push_back(static_cast<u8>(u * u * 16));
    }
    return symbols;
}

void
BM_FseRoundTrip(benchmark::State &state)
{
    Bytes symbols = makeSkewedSymbols();
    std::vector<u64> freqs(16, 0);
    for (u8 s : symbols)
        ++freqs[s];
    auto norm = fse::normalizeCounts(freqs, 9).value();
    auto enc = fse::buildEncodeTable(norm).value();
    auto dec = fse::buildDecodeTable(norm).value();
    for (auto _ : state) {
        BitWriter writer;
        (void)fse::encodeAll(enc, symbols, writer);
        Bytes stream = writer.finish();
        auto reader = BackwardBitReader::open(stream).value();
        Bytes out;
        (void)fse::decodeAll(dec, reader, symbols.size(), out);
        benchmark::DoNotOptimize(out.data());
    }
    setThroughput(state, symbols.size());
}
BENCHMARK(BM_FseRoundTrip);

/** Decode-only: isolates the tANS state walk + backward refills. */
void
BM_FseDecode(benchmark::State &state)
{
    Bytes symbols = makeSkewedSymbols();
    std::vector<u64> freqs(16, 0);
    for (u8 s : symbols)
        ++freqs[s];
    auto norm = fse::normalizeCounts(freqs, 9).value();
    auto enc = fse::buildEncodeTable(norm).value();
    auto dec = fse::buildDecodeTable(norm).value();
    BitWriter writer;
    (void)fse::encodeAll(enc, symbols, writer);
    Bytes stream = writer.finish();
    mem::KernelStats before = mem::kernelStats();
    for (auto _ : state) {
        auto reader = BackwardBitReader::open(stream).value();
        Bytes out;
        (void)fse::decodeAll(dec, reader, symbols.size(), out);
        benchmark::DoNotOptimize(out.data());
    }
    setThroughput(state, symbols.size());
    attachKernelCounters(state, before);
}
BENCHMARK(BM_FseDecode);

// --- Tier-pinned decode benchmarks -----------------------------------
//
// One decode benchmark per (kernel, tier) pair, with the tier forced
// inside the timed function: BM_TierDecode/<kernel>/<class>/<tier>.
// Comparing the <tier> rows of one <kernel>/<class> group gives the
// honest SIMD-vs-scalar speedup on identical inputs; the per-tier
// kernel counters attached below prove the vector path actually ran.

/** Attaches the per-tier attribution counters accumulated across the
 *  timed loop, proving which tier's kernels executed. */
void
attachTierCounters(benchmark::State &state, kernels::Tier tier,
                   const mem::KernelStats &before)
{
    const mem::KernelStats &now = mem::kernelStats();
    const double iters = static_cast<double>(state.iterations());
    if (iters == 0)
        return;
    const unsigned t = static_cast<unsigned>(tier);
    auto per_iter = [&](u64 after_v, u64 before_v) {
        return static_cast<double>(after_v - before_v) / iters;
    };
    state.counters["tier_wild_copy_bytes"] = per_iter(
        now.tierWildCopyBytes[t], before.tierWildCopyBytes[t]);
    state.counters["tier_crc32c_bytes"] =
        per_iter(now.tierCrc32cBytes[t], before.tierCrc32cBytes[t]);
    state.counters["tier_hash_positions"] = per_iter(
        now.tierHashPositions[t], before.tierHashPositions[t]);
    state.counters["tier_huffman_symbols"] =
        per_iter(now.tierHuffSymbols[t], before.tierHuffSymbols[t]);
}

/** Restores the entry tier when the benchmark body ends. */
class BenchTierGuard
{
  public:
    explicit BenchTierGuard(kernels::Tier tier)
        : saved_(kernels::activeTier())
    {
        (void)kernels::setActiveTier(tier);
    }
    ~BenchTierGuard() { (void)kernels::setActiveTier(saved_); }

  private:
    kernels::Tier saved_;
};

void
runSnappyDecompressAtTier(benchmark::State &state, kernels::Tier tier,
                          int cls_index)
{
    BenchTierGuard guard(tier);
    Bytes data = makeData(cls_index, 256 * kKiB);
    Bytes compressed = snappy::compress(data);
    mem::KernelStats before = mem::kernelStats();
    Bytes out;
    for (auto _ : state) {
        if (!snappy::decompressInto(compressed, out).ok())
            state.SkipWithError("decompress failed");
        benchmark::DoNotOptimize(out.data());
    }
    setThroughput(state, data.size());
    attachTierCounters(state, tier, before);
}

void
runZstdLiteDecompressAtTier(benchmark::State &state,
                            kernels::Tier tier, int cls_index)
{
    BenchTierGuard guard(tier);
    Bytes data = makeData(cls_index, 256 * kKiB);
    auto compressed = zstdlite::compress(data);
    mem::KernelStats before = mem::kernelStats();
    Bytes out;
    for (auto _ : state) {
        if (!zstdlite::decompressInto(compressed.value(), out).ok())
            state.SkipWithError("decompress failed");
        benchmark::DoNotOptimize(out.data());
    }
    setThroughput(state, data.size());
    attachTierCounters(state, tier, before);
}

void
runHuffmanDecodeAtTier(benchmark::State &state, kernels::Tier tier)
{
    BenchTierGuard guard(tier);
    Bytes data = makeData(0, 128 * kKiB);
    auto table =
        huffman::buildCodeTable(huffman::countFrequencies(data))
            .value();
    auto decoder = huffman::Decoder::build(table).value();
    BitWriter writer;
    (void)huffman::encode(table, data, writer);
    Bytes stream = writer.finish();
    mem::KernelStats before = mem::kernelStats();
    for (auto _ : state) {
        BitReader reader(stream);
        Bytes out;
        (void)decoder.decode(reader, data.size(), out);
        benchmark::DoNotOptimize(out.data());
    }
    setThroughput(state, data.size());
    attachTierCounters(state, tier, before);
}

void
registerTierBenchmarks()
{
    auto classes = corpus::allDataClasses();
    for (kernels::Tier tier : kernels::availableTiers()) {
        const std::string suffix = kernels::tierName(tier);
        for (std::size_t cls = 0; cls < classes.size(); ++cls) {
            std::string cls_name = corpus::dataClassName(classes[cls]);
            benchmark::RegisterBenchmark(
                ("BM_TierDecode/snappy/" + cls_name + "/" + suffix)
                    .c_str(),
                [tier, cls](benchmark::State &state) {
                    runSnappyDecompressAtTier(state, tier,
                                              static_cast<int>(cls));
                });
        }
        // ZstdLite exercises wild copies + the fused Huffman literal
        // decode; text and log are the compressible classes the CI
        // speedup guard watches.
        for (int cls : {0, 1}) {
            std::string cls_name = corpus::dataClassName(classes[cls]);
            benchmark::RegisterBenchmark(
                ("BM_TierDecode/zstdlite/" + cls_name + "/" + suffix)
                    .c_str(),
                [tier, cls](benchmark::State &state) {
                    runZstdLiteDecompressAtTier(state, tier, cls);
                });
        }
        benchmark::RegisterBenchmark(
            ("BM_TierDecode/huffman/text/" + suffix).c_str(),
            [tier](benchmark::State &state) {
                runHuffmanDecodeAtTier(state, tier);
            });
    }
}

/** Attaches the per-stage wall-time breakdown accumulated across the
 *  timed loop as `transform.<stage>.ns` per-iteration counters, so a
 *  pipeline's headline number is attributable to its stages. No-ops
 *  (adds nothing) for base codecs, whose deltas are all zero. */
void
attachStageCounters(benchmark::State &state,
                    const transform::StageStats &before)
{
    const transform::StageStats delta =
        transform::stageStats().diff(before);
    const double iters = static_cast<double>(state.iterations());
    if (iters == 0)
        return;
    for (transform::StageId stage : transform::allStages()) {
        const auto i = static_cast<std::size_t>(stage);
        const u64 ns = delta.applyNs[i] + delta.invertNs[i];
        if (ns == 0)
            continue;
        state.counters["transform." + transform::stageName(stage) +
                       ".ns"] = static_cast<double>(ns) / iters;
    }
}

/** Whole-buffer round trip through the registry vtable at the codec's
 *  default parameters — the same entry points the serve layer uses. */
void
runRegistryCompress(benchmark::State &state, codec::CodecId id)
{
    const codec::CodecVTable &vtable = codec::registry(id);
    Bytes data = makeData(0, 256 * kKiB); // text
    const codec::CodecParams params = vtable.caps.clamp(
        vtable.caps.defaultLevel, vtable.caps.defaultWindowLog);
    const transform::StageStats stages_before =
        transform::stageStats();
    Bytes out;
    for (auto _ : state) {
        if (!vtable.compressInto(data, params, out).ok())
            state.SkipWithError("compress failed");
        benchmark::DoNotOptimize(out.data());
    }
    setThroughput(state, data.size());
    attachStageCounters(state, stages_before);
}

void
runRegistryDecompress(benchmark::State &state, codec::CodecId id)
{
    const codec::CodecVTable &vtable = codec::registry(id);
    Bytes data = makeData(0, 256 * kKiB);
    const codec::CodecParams params = vtable.caps.clamp(
        vtable.caps.defaultLevel, vtable.caps.defaultWindowLog);
    Bytes compressed;
    if (!vtable.compressInto(data, params, compressed).ok()) {
        state.SkipWithError("pre-compress failed");
        return;
    }
    const transform::StageStats stages_before =
        transform::stageStats();
    Bytes out;
    for (auto _ : state) {
        if (!vtable.decompressInto(compressed, out).ok())
            state.SkipWithError("decompress failed");
        benchmark::DoNotOptimize(out.data());
    }
    setThroughput(state, data.size());
    attachStageCounters(state, stages_before);
}

/**
 * Ratio benchmark over one (codec, data class) cell: the headline
 * comparison for the preconditioner pipelines. A pipeline earns its
 * place by beating its bare terminal codec's ratio on a matching
 * class (delta+snappy on timeseries, shred+zstdlite on columnar, ...);
 * the committed BENCH_kernels.json carries these cells so the claim
 * is checkable. The `ratio` counter is uncompressed/compressed; the
 * stage counters break the compress time down per transform.
 */
void
runRegistryRatio(benchmark::State &state, codec::CodecId id,
                 int cls_index)
{
    const codec::CodecVTable &vtable = codec::registry(id);
    Bytes data = makeData(cls_index, 256 * kKiB);
    const codec::CodecParams params = vtable.caps.clamp(
        vtable.caps.defaultLevel, vtable.caps.defaultWindowLog);
    const transform::StageStats stages_before =
        transform::stageStats();
    Bytes compressed;
    for (auto _ : state) {
        if (!vtable.compressInto(data, params, compressed).ok())
            state.SkipWithError("compress failed");
        benchmark::DoNotOptimize(compressed.data());
    }
    setThroughput(state, data.size());
    attachStageCounters(state, stages_before);
    if (!compressed.empty())
        state.counters["ratio"] =
            static_cast<double>(data.size()) /
            static_cast<double>(compressed.size());
    state.SetLabel(corpus::dataClassName(
        corpus::allDataClasses()[static_cast<std::size_t>(
            cls_index)]));
}

/** Session-API round trip fed in 4 KiB chunks: what streaming RPC
 *  traffic pays relative to the whole-buffer entry points. */
void
runRegistryStreamDecompress(benchmark::State &state, codec::CodecId id)
{
    const codec::CodecVTable &vtable = codec::registry(id);
    Bytes data = makeData(0, 256 * kKiB);
    const codec::CodecParams params = vtable.caps.clamp(
        vtable.caps.defaultLevel, vtable.caps.defaultWindowLog);
    // Streaming decoders consume the session container (for snappy it
    // differs from the raw buffer format), so produce it with one.
    Bytes compressed;
    {
        auto session = vtable.makeCompressSession(params);
        if (!codec::compressAll(*session, data, 0, compressed).ok()) {
            state.SkipWithError("session pre-compress failed");
            return;
        }
    }
    Bytes out;
    for (auto _ : state) {
        auto session = vtable.makeDecompressSession();
        out.clear();
        if (!codec::decompressAll(*session, compressed, 4 * kKiB, out)
                 .ok())
            state.SkipWithError("stream decompress failed");
        benchmark::DoNotOptimize(out.data());
    }
    setThroughput(state, data.size());
}

/** Registers the registry-driven benchmarks (one trio per codec, plus
 *  the ratio cells over the preconditioner data classes) and publishes
 *  each codec's capability metadata into the benchmark context so
 *  --json output is self-describing. */
void
registerRegistryBenchmarks()
{
    const auto classes = corpus::allDataClasses();
    for (codec::CodecId id : codec::allCodecs()) {
        std::string name = codec::codecName(id);
        benchmark::RegisterBenchmark(
            ("BM_Codec/" + name + "/compress").c_str(),
            [id](benchmark::State &state) {
                runRegistryCompress(state, id);
            });
        benchmark::RegisterBenchmark(
            ("BM_Codec/" + name + "/decompress").c_str(),
            [id](benchmark::State &state) {
                runRegistryDecompress(state, id);
            });
        benchmark::RegisterBenchmark(
            ("BM_Codec/" + name + "/stream_decompress").c_str(),
            [id](benchmark::State &state) {
                runRegistryStreamDecompress(state, id);
            });
        // Ratio cells: text as the legacy anchor plus the three
        // preconditioner classes the pipelines target.
        for (corpus::DataClass cls :
             {corpus::DataClass::textLike, corpus::DataClass::timeSeries,
              corpus::DataClass::columnarNumeric,
              corpus::DataClass::imagePlane}) {
            int cls_index = -1;
            for (std::size_t i = 0; i < classes.size(); ++i)
                if (classes[i] == cls)
                    cls_index = static_cast<int>(i);
            benchmark::RegisterBenchmark(
                ("BM_CodecRatio/" + name + "/" +
                 corpus::dataClassName(cls))
                    .c_str(),
                [id, cls_index](benchmark::State &state) {
                    runRegistryRatio(state, id, cls_index);
                });
        }
        benchmark::AddCustomContext("codec." + name,
                                    bench::codecCapsJson(id).dump(0));
    }
}

} // namespace

/**
 * Custom main so this binary honors the repo-wide `--json <path>`
 * telemetry flag (translated into google-benchmark's native
 * `--benchmark_out` / `--benchmark_out_format=json` pair before
 * benchmark::Initialize consumes argv), the registry-driven
 * `--codec <name>` filter, which resolves the name through
 * codec::codecFromName and narrows the run to that codec's
 * BM_Codec/<name>/ benchmarks, and `--kernel-tier <name>`, which
 * forces the SIMD kernel tier for every non-pinned benchmark
 * (overriding the CDPU_KERNEL_TIER environment override).
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> arg_storage;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        std::string path;
        if (arg.rfind("--kernel-tier=", 0) == 0 ||
            (arg == "--kernel-tier" && i + 1 < argc)) {
            std::string name = arg.rfind("--kernel-tier=", 0) == 0
                                   ? arg.substr(14)
                                   : std::string(argv[++i]);
            cdpu::Status status = cdpu::kernels::applyTierOverride(name);
            if (!status.ok()) {
                std::fprintf(stderr, "--kernel-tier %s: %s\n",
                             name.c_str(),
                             status.message().c_str());
                return 1;
            }
            continue;
        }
        if (arg.rfind("--codec=", 0) == 0 ||
            (arg == "--codec" && i + 1 < argc)) {
            std::string name = arg.rfind("--codec=", 0) == 0
                                   ? arg.substr(8)
                                   : std::string(argv[++i]);
            auto id = cdpu::codec::codecFromName(name);
            if (!id.ok()) {
                std::fprintf(stderr, "--codec %s: %s\n", name.c_str(),
                             id.status().message().c_str());
                return 1;
            }
            // The filter is a regex; escape the '+' in pipeline spec
            // names so "delta+snappy" matches literally. Matches both
            // the BM_Codec trio and the BM_CodecRatio cells.
            std::string escaped;
            for (char c : cdpu::codec::codecName(id.value())) {
                if (c == '+')
                    escaped += '\\';
                escaped += c;
            }
            arg_storage.push_back(
                "--benchmark_filter=BM_Codec(Ratio)?/" + escaped +
                "/");
            continue;
        }
        if (arg.rfind("--json=", 0) == 0) {
            path = arg.substr(7);
        } else if (arg == "--json" && i + 1 < argc) {
            path = argv[++i];
        } else {
            arg_storage.push_back(std::move(arg));
            continue;
        }
        arg_storage.push_back("--benchmark_out=" + path);
        arg_storage.push_back("--benchmark_out_format=json");
    }
    registerRegistryBenchmarks();
    registerTierBenchmarks();
    // Every --json record carries the kernel-tier provenance: which
    // tier the non-pinned benchmarks ran at, what the host detected,
    // and the raw CPU feature summary.
    benchmark::AddCustomContext(
        "kernel.active_tier",
        cdpu::kernels::tierName(cdpu::kernels::activeTier()));
    benchmark::AddCustomContext(
        "kernel.detected_tier",
        cdpu::kernels::tierName(cdpu::kernels::detectedTier()));
    benchmark::AddCustomContext("kernel.cpu_features",
                                cdpu::kernels::cpuFeatureSummary());
    {
        std::string tiers;
        for (cdpu::kernels::Tier tier :
             cdpu::kernels::availableTiers()) {
            if (!tiers.empty())
                tiers += ",";
            tiers += cdpu::kernels::tierName(tier);
        }
        benchmark::AddCustomContext("kernel.available_tiers", tiers);
    }
    std::vector<char *> args;
    for (std::string &arg : arg_storage)
        args.push_back(arg.data());
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
